(** Composable, seeded fault schedules over {!Pti_net.Net}.

    A plan is a list of timed {e windows}; each window applies one fault
    {e action} to the links matched by its {e selector} while the
    simulated clock is inside [\[start, stop)]. Plans compile to the
    network's lazy per-link {!Pti_net.Net.fault_hooks} — no events are
    scheduled, so the simulation still quiesces, and every random choice
    is drawn from an explicit [Splitmix] stream: one [int64] seed
    reproduces the whole run. *)

module Splitmix = Pti_util.Splitmix

type selector =
  | Any  (** Every link. *)
  | Between of string * string  (** The unordered pair. *)
  | From_host of string
  | To_host of string
  | Touching of string
      (** Any link with the host at either end — a whole-host fault
          (crash windows use this: the host falls silent, then
          restarts when the window closes). *)

type action =
  | Loss of float  (** Per-attempt drop probability (burst loss). *)
  | Duplicate of float  (** Probability of one extra copy per window. *)
  | Reorder of float
      (** Extra uniform random delay up to the given ms — enough beyond
          the link jitter to reorder messages in flight. *)
  | Corrupt of float  (** Per-copy byte-corruption probability. *)
  | Down
      (** Link severed for the whole window: flap, partition or crash
          depending on the selector; heals itself at [w_stop]. *)

type window = {
  w_start : float;
  w_stop : float;  (** Start-inclusive, stop-exclusive, in sim ms. *)
  w_sel : selector;
  w_act : action;
}

type t = { windows : window list }

val selector_matches : selector -> src:string -> dst:string -> bool
val window_active : window -> now:float -> src:string -> dst:string -> bool

val horizon : t -> float
(** Largest [w_stop]; 0 for an empty plan. Past it the network is
    fault-free. *)

val hooks :
  t ->
  rng:Splitmix.t ->
  corrupt:(Splitmix.t -> 'a -> 'a option) ->
  'a Pti_net.Net.fault_hooks
(** Compile the plan. [rng] feeds every probabilistic window (loss,
    duplication, reorder jitter, corruption coins); [corrupt] mangles a
    payload when a corruption window fires (return [None] to leave a
    payload it cannot corrupt). *)

(** {1 Profiles and generation} *)

type profile = Lossy | Flaky | Byzantine_wire

val profile_name : profile -> string
val profile_of_string : string -> profile option

val random :
  profile:profile -> hosts:string list -> horizon_ms:float -> Splitmix.t -> t
(** A randomized plan for the profile:
    - [Lossy]: burst-loss windows plus duplication and reordering — no
      severed links, so ARQ can always win;
    - [Flaky]: link flaps / whole-host crash windows (self-healing) on
      top of loss and duplication;
    - [Byzantine_wire]: byte-corruption windows plus duplication and
      reordering — no loss, so every failure is an integrity story.

    Window durations are bounded well below the ARQ retry span
    (12 x 40 ms in the chaos harness), so a retried message always gets
    attempts outside any single window. *)

(** {1 Shrinking} *)

val shrink_candidates : t -> t list
(** Strictly smaller plans to try when this one fails: first each half
    of the window list, then every single-window removal. Empty for
    plans of one or zero windows. *)

val shrink : fails:(t -> bool) -> t -> t
(** Greedy ddmin: repeatedly move to the first candidate that still
    [fails]. Returns a locally minimal failing plan ([plan] itself when
    nothing smaller fails). Assumes [fails plan] — callers check. *)

val pp : Format.formatter -> t -> unit
(** One line per window: [  12.0..96.0ms loss(0.62) on alice->*]. *)
