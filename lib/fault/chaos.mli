(** The chaos harness: seeded end-to-end runs under injected faults,
    checked against the protocol's invariants, with schedule shrinking.

    Each run builds a fresh world (network, peers, optionally a
    replicated cluster), publishes a small workload of conformant and
    trap type families, paces object sends across the fault horizon,
    compiles a {!Fault_plan} onto the network and runs to quiescence.
    Everything — link noise, fault windows, gossip partners — derives
    from one [int64] seed, so a failing run reproduces from its seed
    alone and a shrunk plan replays under the same randomness. *)

type config = {
  c_profile : Fault_plan.profile;
  c_cluster : bool;
      (** [true]: a 4-node replicated cluster (factor 2, gossip ticking
          through the fault horizon, membership re-convergence checked
          after heal). [false]: two peers. *)
  c_objects : int;  (** Objects sent per run (60 ms apart). *)
  c_frame_integrity : bool;
      (** Install {!Corruptor.frame_intact} so corrupt object envelopes
          are dropped pre-ack and recovered by ARQ retransmission. *)
  c_wire : bool;
      (** Run with every wire-efficiency feature on: negotiated type
          handles, envelope batching (4 KiB budget) and the binary
          tdesc codec. With 5+ objects the receiver's handle tables are
          additionally dropped just before the last send, and the run
          must observe at least one renegotiation
          ({!Invariant.handle_degradation}). *)
  c_upgrade : bool;
      (** Live schema evolution under faults: halfway through the send
          window, family 0 is CAS-republished at v2 (adds an [email]
          field) on the sender's version chain. Later sends of that
          family travel — and must decode — at v2; in-flight v1 sends
          must keep decoding at v1 ({!Invariant.upgrade_safety}). *)
}

val default_config : config
(** Lossy, two peers, 8 objects, frame integrity on, wire features and
    upgrade off. *)

type run_result = {
  r_seed : int64;
  r_plan : Fault_plan.t;
  r_sent : int;
  r_delivered : int;
  r_rejected : int;  (** Non-conformant (trap) objects turned away. *)
  r_failed : int;  (** Decode/load failures and terminal corruptions. *)
  r_corrupt_rejects : int;  (** Across every peer in the run. *)
  r_net_lost : int;  (** Object messages the ARQ layer gave up on. *)
  r_retransmissions : int;
  r_injected_drops : int;
  r_corrupted_frames : int;
  r_integrity_drops : int;
  r_renegotiations : int;
      (** Handle NAKs the receiver sent — nonzero whenever its tables
          were dropped mid-run under [c_wire]. *)
  r_violations : Invariant.violation list;  (** Empty = run is green. *)
}

val name_age : Pti_cts.Value.value -> (string * int) option
(** Extract the [(name, age)] observable fields from a delivered person
    object (unwrapping proxies) — the payload identity the no-mangle
    invariant compares. Shared with the model checker's scenarios. *)

val is_terminal_failure : Pti_core.Peer.event -> bool
(** Events that permanently consume an object for the conservation
    count: decode/load failures and corrupt envelope/payload/batch
    rejections (a corrupt handle-bind frame is {e not} terminal — the
    parked envelope accounts for itself). *)

val run_one : ?plan:Fault_plan.t -> config -> seed:int64 -> run_result
(** One seeded world. [plan] overrides the generated schedule (same
    seed + same plan = same result — what {!shrink} relies on). *)

val shrink : config -> seed:int64 -> Fault_plan.t -> Fault_plan.t
(** Greedy ddmin over {!Fault_plan.shrink_candidates}: repeatedly move
    to the first strictly smaller plan that still violates an invariant
    under the same seed. Returns a (locally) minimal failing plan. *)

type summary = {
  s_runs : int;
  s_sent : int;
  s_delivered : int;
  s_rejected : int;
  s_failed : int;
  s_net_lost : int;
  s_corrupt_rejects : int;
  s_retransmissions : int;
  s_failures : run_result list;
  s_shrunk : (run_result * run_result) option;
      (** First failing run and its re-run under the shrunk plan. *)
}

val run_many : config -> runs:int -> seed:int64 -> summary
(** [runs] independent worlds with per-run seeds derived from [seed].
    If any run violates an invariant, the first failure is shrunk. *)

val pp_run : Format.formatter -> run_result -> unit
val pp_summary : Format.formatter -> summary -> unit
