module Splitmix = Pti_util.Splitmix

type selector =
  | Any
  | Between of string * string
  | From_host of string
  | To_host of string
  | Touching of string

type action =
  | Loss of float
  | Duplicate of float
  | Reorder of float
  | Corrupt of float
  | Down

type window = {
  w_start : float;
  w_stop : float;
  w_sel : selector;
  w_act : action;
}

type t = { windows : window list }

let selector_matches sel ~src ~dst =
  match sel with
  | Any -> true
  | Between (a, b) -> (src = a && dst = b) || (src = b && dst = a)
  | From_host h -> src = h
  | To_host h -> dst = h
  | Touching h -> src = h || dst = h

let window_active w ~now ~src ~dst =
  now >= w.w_start && now < w.w_stop && selector_matches w.w_sel ~src ~dst

let horizon t = List.fold_left (fun acc w -> Float.max acc w.w_stop) 0. t.windows

let coin rng p = Splitmix.float rng < p
let uniform rng x = Splitmix.float rng *. x

let hooks plan ~rng ~corrupt =
  let active ~now ~src ~dst =
    List.filter (fun w -> window_active w ~now ~src ~dst) plan.windows
  in
  {
    Pti_net.Net.fh_down =
      (fun ~now ~src ~dst ->
        List.exists
          (fun w -> match w.w_act with Down -> true | _ -> false)
          (active ~now ~src ~dst));
    fh_drop =
      (fun ~now ~src ~dst ->
        List.exists
          (fun w -> match w.w_act with Loss p -> coin rng p | _ -> false)
          (active ~now ~src ~dst));
    fh_duplicates =
      (fun ~now ~src ~dst ->
        List.fold_left
          (fun acc w ->
            match w.w_act with
            | Duplicate p when coin rng p -> acc + 1
            | _ -> acc)
          0
          (active ~now ~src ~dst));
    fh_delay =
      (fun ~now ~src ~dst ->
        List.fold_left
          (fun acc w ->
            match w.w_act with
            | Reorder ms -> acc +. uniform rng ms
            | _ -> acc)
          0.
          (active ~now ~src ~dst));
    fh_corrupt =
      (fun ~now ~src ~dst payload ->
        if
          List.exists
            (fun w -> match w.w_act with Corrupt p -> coin rng p | _ -> false)
            (active ~now ~src ~dst)
        then corrupt rng payload
        else None);
  }

(* Profiles *)

type profile = Lossy | Flaky | Byzantine_wire

let profile_name = function
  | Lossy -> "lossy"
  | Flaky -> "flaky"
  | Byzantine_wire -> "byzantine-wire"

let profile_of_string = function
  | "lossy" -> Some Lossy
  | "flaky" -> Some Flaky
  | "byzantine-wire" | "byzantine_wire" | "byzantine" -> Some Byzantine_wire
  | _ -> None

let pick rng xs = List.nth xs (Splitmix.int rng (List.length xs))

let pick_selector rng hosts =
  let h () = pick rng hosts in
  match Splitmix.int rng 5 with
  | 0 -> Any
  | 1 ->
      let a = h () in
      let b = h () in
      if a = b then Touching a else Between (a, b)
  | 2 -> From_host (h ())
  | 3 -> To_host (h ())
  | _ -> Touching (h ())

(* Window starts are confined to the first ~70% of the horizon and
   durations stay far below the chaos ARQ retry span (12 x 40 ms), so a
   retried message always gets attempts outside any single window. *)
let start_in rng horizon_ms =
  (0.05 *. horizon_ms) +. uniform rng (0.65 *. horizon_ms)

let window rng hosts horizon_ms ~min_len ~max_len act =
  let s = start_in rng horizon_ms in
  let len = min_len +. uniform rng (max_len -. min_len) in
  { w_start = s; w_stop = s +. len; w_sel = pick_selector rng hosts; w_act = act }

let random ~profile ~hosts ~horizon_ms rng =
  let n lo hi = lo + Splitmix.int rng (hi - lo + 1) in
  let windows =
    match profile with
    | Lossy ->
        let losses =
          List.init (n 2 4) (fun _ ->
              window rng hosts horizon_ms ~min_len:40. ~max_len:140.
                (Loss (0.4 +. uniform rng 0.55)))
        in
        let extras =
          [
            window rng hosts horizon_ms ~min_len:40. ~max_len:120.
              (Reorder (10. +. uniform rng 70.));
            window rng hosts horizon_ms ~min_len:40. ~max_len:120.
              (Duplicate (0.3 +. uniform rng 0.5));
          ]
        in
        losses @ extras
    | Flaky ->
        let downs =
          List.init (n 1 2) (fun _ ->
              let sel =
                let h () = pick rng hosts in
                if Splitmix.bool rng then Touching (h ())
                else
                  let a = h () and b = h () in
                  if a = b then Touching a else Between (a, b)
              in
              let s = start_in rng horizon_ms in
              let len = 60. +. uniform rng 180. in
              { w_start = s; w_stop = s +. len; w_sel = sel; w_act = Down })
        in
        downs
        @ [
            window rng hosts horizon_ms ~min_len:40. ~max_len:120.
              (Loss (0.3 +. uniform rng 0.5));
            window rng hosts horizon_ms ~min_len:40. ~max_len:120.
              (Duplicate (0.3 +. uniform rng 0.4));
          ]
    | Byzantine_wire ->
        let corrupts =
          List.init (n 2 3) (fun _ ->
              window rng hosts horizon_ms ~min_len:60. ~max_len:120.
                (Corrupt (0.5 +. uniform rng 0.45)))
        in
        let extras =
          (if Splitmix.bool rng then
             [
               window rng hosts horizon_ms ~min_len:40. ~max_len:100.
                 (Duplicate (0.3 +. uniform rng 0.4));
             ]
           else [])
          @
          if Splitmix.bool rng then
            [
              window rng hosts horizon_ms ~min_len:40. ~max_len:100.
                (Reorder (10. +. uniform rng 50.));
            ]
          else []
        in
        corrupts @ extras
  in
  { windows }

(* Shrinking delegates to the generic ddmin over the window list. *)
let shrink_candidates t =
  List.map (fun windows -> { windows }) (Shrink.candidates t.windows)

let shrink ~fails plan =
  { windows = Shrink.ddmin ~fails:(fun ws -> fails { windows = ws }) plan.windows }

let pp_selector ppf = function
  | Any -> Format.fprintf ppf "*->*"
  | Between (a, b) -> Format.fprintf ppf "%s<->%s" a b
  | From_host h -> Format.fprintf ppf "%s->*" h
  | To_host h -> Format.fprintf ppf "*->%s" h
  | Touching h -> Format.fprintf ppf "*%s*" h

let pp_action ppf = function
  | Loss p -> Format.fprintf ppf "loss(%.2f)" p
  | Duplicate p -> Format.fprintf ppf "dup(%.2f)" p
  | Reorder ms -> Format.fprintf ppf "reorder(+%.0fms)" ms
  | Corrupt p -> Format.fprintf ppf "corrupt(%.2f)" p
  | Down -> Format.fprintf ppf "down"

let pp ppf t =
  if t.windows = [] then Format.fprintf ppf "  (no fault windows)"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf "@\n")
      (fun ppf w ->
        Format.fprintf ppf "  %6.1f..%6.1fms %a on %a" w.w_start w.w_stop
          pp_action w.w_act pp_selector w.w_sel)
      ppf t.windows
