type violation = { inv : string; detail : string }

let pp_violation ppf v = Format.fprintf ppf "%s: %s" v.inv v.detail

let v inv fmt = Format.kasprintf (fun detail -> { inv; detail }) fmt

let conservation ~sent ~delivered ~rejected ~failed ~net_lost =
  let accounted = delivered + rejected + failed + net_lost in
  if accounted = sent then []
  else
    [
      v "conservation"
        "sent=%d but delivered=%d + rejected=%d + failed=%d + net_lost=%d = %d"
        sent delivered rejected failed net_lost accounted;
    ]

let exactly_once ~delivered_keys =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun k ->
      if Hashtbl.mem seen k then Some (v "exactly-once" "%S delivered twice" k)
      else begin
        Hashtbl.add seen k ();
        None
      end)
    delivered_keys

let no_mangle ~expected ~got =
  List.filter_map
    (fun (key, (name, age)) ->
      match List.assoc_opt key expected with
      | None -> Some (v "no-mangle" "delivered unknown key %S" key)
      | Some (name', age') ->
          if String.equal name name' && age = age' then None
          else
            Some
              (v "no-mangle" "%S delivered as (%S, %d), published as (%S, %d)"
                 key name age name' age'))
    got

let trap_never_delivered ~trap_keys ~delivered_keys =
  List.filter_map
    (fun k ->
      if List.mem k trap_keys then
        Some (v "trap-rejected" "trap object %S was delivered" k)
      else None)
    delivered_keys

let verdict_stability triples =
  List.filter_map
    (fun (ty, before, after) ->
      if String.equal before after then None
      else
        Some
          (v "verdict-stability" "%s checked %s before faults, %s after" ty
             before after))
    triples

let membership_converged rows =
  List.concat_map
    (fun (observer, members) ->
      List.filter_map
        (fun (member, status) ->
          if String.equal status "alive" then None
          else
            Some
              (v "membership" "%s sees %s as %s after heal" observer member
                 status))
        members)
    rows

let handle_degradation ~tables_dropped ~renegotiations =
  if tables_dropped && renegotiations = 0 then
    [
      v "handle-degradation"
        "receiver handle tables were dropped mid-run but no renegotiation \
         was observed — refs after the drop must NAK, not resolve";
    ]
  else []

(* The in-flight dedup guarantee: concurrent needs for the same type
   description / assembly join one wire exchange. On a fault-free run
   the subprotocol traffic is therefore bounded by the number of
   distinct things needed, however many envelopes arrive and in whatever
   order — the historical fan-out bug broke exactly this. *)
let fetch_economy ~label ~actual ~allowed =
  if actual <= allowed then []
  else
    [
      v "fetch-economy" "%s: %d requests on the wire, at most %d justified"
        label actual allowed;
    ]

(* Live-upgrade safety: every delivery must be decoded against exactly
   the schema revision its envelope negotiated. The observable is the
   v2-only [email] field — present iff the payload travelled at v2 AND
   was decoded with the v2 description; a v2 payload decoded against v1
   silently drops the field (the decoder skips undeclared fields), which
   is precisely the mangling a stale pin would cause. *)
let upgrade_safety ~negotiated ~decoded =
  List.filter_map
    (fun (key, dv) ->
      match List.assoc_opt key negotiated with
      | None ->
          Some (v "upgrade-safety" "delivered key %S was never negotiated" key)
      | Some nv ->
          if nv = dv then None
          else
            Some
              (v "upgrade-safety"
                 "%S negotiated schema v%d but was decoded against v%d" key nv
                 dv))
    decoded

let metrics_match_trace pairs =
  List.filter_map
    (fun (label, metric, trace) ->
      if metric = trace then None
      else
        Some (v "metrics-vs-trace" "%s: metrics=%d trace=%d" label metric trace))
    pairs
