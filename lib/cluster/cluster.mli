(** A harness over a set of {!Node}s sharing one transport — what the
    CLI, the E9 bench and the integration tests drive.

    The harness owns nothing the nodes do not: it creates one peer +
    node per address, bootstraps membership with the full roster, and
    offers round-driving and whole-host crash/heal conveniences. The
    transport may be the simulated network (deterministic, the
    default for tests) or a socket fabric. *)

type t

val create : ?mode:Pti_core.Peer.mode -> ?codec:Pti_serial.Envelope.codec ->
  ?metrics:Pti_obs.Metrics.t -> ?factor:int -> ?seed:int64 ->
  ?request_timeout_ms:float -> ?fetch_retries:int ->
  ?fetch_backoff_ms:float -> ?probe_timeout_ms:float ->
  ?handles:bool -> ?batch_bytes:int -> ?tdesc_binary:bool ->
  ?handle_table_capacity:int -> ?piggyback_interval_ms:float ->
  ?net:Pti_core.Message.t Pti_net.Net.t ->
  ?transport:Pti_core.Message.t Pti_transport.Transport.t ->
  string list -> t
(** One peer + node per address, registered on the given fabric —
    exactly one of [~net] (simulated network, wrapped) or
    [~transport]. [factor] is the replication factor of every
    {!Node.publish} (default 2); [seed] derives each node's
    deterministic gossip-partner stream; the remaining knobs pass
    through to {!Pti_core.Peer.create} / {!Node.create}.
    @raise Invalid_argument on an empty address list, or unless
    exactly one of [~net] / [~transport] is given. *)

val transport : t -> Pti_core.Message.t Pti_transport.Transport.t

val net : t -> Pti_core.Message.t Pti_net.Net.t
(** The underlying simulated network.
    @raise Invalid_argument when the cluster runs on a socket
    transport. *)

val addresses : t -> string list
(** Creation order. *)

val nodes : t -> Node.t list
val node : t -> string -> Node.t
(** @raise Invalid_argument for an unknown address. *)

val peer : t -> string -> Pti_core.Peer.t

val run : t -> unit
(** Drive the shared transport to quiescence. *)

val run_rounds : t -> int -> unit
(** [n] gossip rounds: every node {!Node.tick}s, then the transport
    runs to quiescence; repeat. *)

val crash : t -> string -> unit
(** Partition the address from every other cluster member — in-flight
    messages included. Survivors degrade it to suspect, then dead, as
    their probes go unanswered. *)

val heal : t -> string -> unit
(** Undo {!crash}; the healed host is re-adopted on first contact. *)
