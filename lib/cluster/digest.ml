(* One wire shape covers the whole anti-entropy exchange: a digest is a
   message with empty [g_descs]; a digest-reply adds the descriptions the
   other side was missing; the closing delta carries only descriptions.
   Line-based with tab separators — none of the encoded atoms (qualified
   type names, asm:// paths, GUIDs, addresses) may contain tabs or
   newlines — except type-description XML, which is length-prefixed so
   its free-form body never confuses the scanner. *)

type msg = {
  g_token : int;
  g_types : (string * string) list;
  g_paths : (string * string) list;
  g_chains : (string * (int * string) list) list;
  g_members : string list;
  g_descs : string list;
}

let empty =
  { g_token = 0; g_types = []; g_paths = []; g_chains = []; g_members = [];
    g_descs = [] }

let no_tabs what s =
  if String.contains s '\t' || String.contains s '\n' then
    invalid_arg (Printf.sprintf "Digest.encode: %s contains a separator" what)

(* A flipped byte in a gossip body must not smuggle a mangled member
   address or download path into cluster state (a later probe of a
   never-registered address is a hard failure), so the body is guarded
   by a leading checksum line. Bodies without one are still accepted. *)
let sum_tag = "sum"

let encode m =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "token\t%d\n" m.g_token);
  List.iter
    (fun (name, guid) ->
      no_tabs "type name" name;
      no_tabs "guid" guid;
      Buffer.add_string b (Printf.sprintf "type\t%s\t%s\n" name guid))
    m.g_types;
  List.iter
    (fun (path, asm) ->
      no_tabs "path" path;
      no_tabs "assembly name" asm;
      Buffer.add_string b (Printf.sprintf "path\t%s\t%s\n" path asm))
    m.g_paths;
  List.iter
    (fun (name, entries) ->
      no_tabs "chain assembly" name;
      let rendered =
        String.concat ","
          (List.map (fun (v, d) -> Printf.sprintf "%d:%s" v d) entries)
      in
      no_tabs "chain entries" rendered;
      Buffer.add_string b (Printf.sprintf "chain\t%s\t%s\n" name rendered))
    m.g_chains;
  List.iter
    (fun addr ->
      no_tabs "member" addr;
      Buffer.add_string b (Printf.sprintf "member\t%s\n" addr))
    m.g_members;
  List.iter
    (fun xml ->
      Buffer.add_string b (Printf.sprintf "desc\t%d\n" (String.length xml));
      Buffer.add_string b xml;
      Buffer.add_char b '\n')
    m.g_descs;
  let body = Buffer.contents b in
  Printf.sprintf "%s\t%s\n%s" sum_tag (Pti_util.Fnv.hash_hex body) body

(* Peel and verify the checksum line before the scanner sees the body. *)
let checked_body s =
  match String.index_opt s '\n' with
  | Some i when i > 4 && String.sub s 0 4 = sum_tag ^ "\t" ->
      let declared = String.sub s 4 (i - 4) in
      let body = String.sub s (i + 1) (String.length s - i - 1) in
      if String.equal declared (Pti_util.Fnv.hash_hex body) then Ok body
      else Error "digest: checksum mismatch"
  | _ -> Ok s

let decode s =
  match checked_body s with
  | Error _ as e -> e
  | Ok s ->
  let len = String.length s in
  let pos = ref 0 in
  let err fmt = Printf.ksprintf (fun e -> Error e) fmt in
  let line () =
    if !pos >= len then None
    else
      let stop =
        match String.index_from_opt s !pos '\n' with
        | Some i -> i
        | None -> len
      in
      let l = String.sub s !pos (stop - !pos) in
      pos := stop + 1;
      Some l
  in
  let fields l = String.split_on_char '\t' l in
  let rec loop acc =
    match line () with
    | None -> Ok acc
    | Some "" -> loop acc
    | Some l -> (
        match fields l with
        | [ "token"; v ] -> (
            match int_of_string_opt v with
            | Some tok -> loop { acc with g_token = tok }
            | None -> err "digest: bad token %S" v)
        | [ "type"; name; guid ] ->
            loop { acc with g_types = (name, guid) :: acc.g_types }
        | [ "path"; path; asm ] ->
            loop { acc with g_paths = (path, asm) :: acc.g_paths }
        | [ "chain"; name; entries ] -> (
            let parse_entry e =
              match String.index_opt e ':' with
              | None -> None
              | Some i -> (
                  let v = String.sub e 0 i in
                  let d = String.sub e (i + 1) (String.length e - i - 1) in
                  match int_of_string_opt v with
                  | Some v when v > 0 && d <> "" -> Some (v, d)
                  | _ -> None)
            in
            let parsed =
              if entries = "" then Some []
              else
                let rec all acc = function
                  | [] -> Some (List.rev acc)
                  | e :: rest -> (
                      match parse_entry e with
                      | Some p -> all (p :: acc) rest
                      | None -> None)
                in
                all [] (String.split_on_char ',' entries)
            in
            match parsed with
            | Some entries ->
                loop { acc with g_chains = (name, entries) :: acc.g_chains }
            | None -> err "digest: bad chain entries for %S" name)
        | [ "member"; addr ] ->
            loop { acc with g_members = addr :: acc.g_members }
        | [ "desc"; v ] -> (
            match int_of_string_opt v with
            | Some n when n >= 0 && !pos + n <= len ->
                let xml = String.sub s !pos n in
                (* skip the payload and its trailing newline *)
                pos := !pos + n + 1;
                loop { acc with g_descs = xml :: acc.g_descs }
            | _ -> err "digest: bad desc length %S" v)
        | tag :: _ -> err "digest: unknown tag %S" tag
        | [] -> loop acc)
  in
  match loop empty with
  | Error _ as e -> e
  | Ok m ->
      Ok
        {
          m with
          g_types = List.rev m.g_types;
          g_paths = List.rev m.g_paths;
          g_chains = List.rev m.g_chains;
          g_members = List.rev m.g_members;
          g_descs = List.rev m.g_descs;
        }
