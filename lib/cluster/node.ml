module Stats = Pti_net.Stats
module Metrics = Pti_obs.Metrics
module Splitmix = Pti_util.Splitmix
module Guid = Pti_util.Guid
module S = Pti_util.Strutil
module Td = Pti_typedesc.Type_description
module Assembly = Pti_cts.Assembly
module Assembly_xml = Pti_serial.Assembly_xml
module Peer = Pti_core.Peer
module Repository = Pti_core.Repository

let log_src = Logs.Src.create "pti.cluster" ~doc:"Cluster membership and gossip"

module Log = (val Logs.src_log log_src : Logs.LOG)

type status = Alive | Suspect | Dead

let status_name = function
  | Alive -> "alive"
  | Suspect -> "suspect"
  | Dead -> "dead"

type member = { mutable m_status : status }

type t = {
  peer : Peer.t;
  addr : string;
  factor : int;
  probe_timeout_ms : float;
  rng : Splitmix.t;
  (* This node's own private observations — RTT estimates stay local,
     the way they would on a real network. *)
  stats : Stats.t;
  members : (string, member) Hashtbl.t;
  mirrors : (string, string) Hashtbl.t;  (* download path -> assembly *)
  inflight : (int, float * string) Hashtbl.t;  (* token -> sent_at, partner *)
  mutable next_token : int;
  (* Free-rider gossip: when the peer flushes an object batch to a
     member, an anti-entropy digest rides along — throttled per
     destination so hot links do not turn into digest firehoses. *)
  piggyback_interval_ms : float;
  piggy_last : (string, float) Hashtbl.t;
  mc_rounds : Metrics.counter;
  mc_digest_bytes : Metrics.counter;
  mc_piggybacked : Metrics.counter;
}

let peer t = t.peer
let address t = t.addr
let replication_factor t = t.factor
let stats t = t.stats
let rtt t addr = Stats.rtt t.stats ~peer:addr

let status t addr =
  Option.map (fun m -> m.m_status) (Hashtbl.find_opt t.members addr)

let members t =
  Hashtbl.fold (fun a m acc -> (a, m.m_status) :: acc) t.members []
  |> List.sort compare

let alive t =
  Hashtbl.fold
    (fun a m acc -> if m.m_status = Alive then a :: acc else acc)
    t.members []
  |> List.sort compare

let mark t addr st =
  if addr <> t.addr then
    match Hashtbl.find_opt t.members addr with
    | Some m -> m.m_status <- st
    | None -> Hashtbl.replace t.members addr { m_status = st }

let join t addrs = List.iter (fun a -> mark t a Alive) addrs

(* Direct contact is the only resurrection: gossip *about* a peer never
   overrides what this node observed itself, or a crashed peer would be
   talked back to life by second-hand rumours. *)
let saw_traffic_from t addr = mark t addr Alive

let note_member t addr =
  if addr <> t.addr && not (Hashtbl.mem t.members addr) then
    Hashtbl.replace t.members addr { m_status = Alive }

let degrade t addr =
  match Hashtbl.find_opt t.members addr with
  | None -> ()
  | Some m -> (
      match m.m_status with
      | Alive ->
          Log.debug (fun f -> f "[%s] suspects %s" t.addr addr);
          m.m_status <- Suspect
      | Suspect ->
          Log.debug (fun f -> f "[%s] declares %s dead" t.addr addr);
          m.m_status <- Dead
      | Dead -> ())

(* ---------------------------------------------------------------- *)
(* Mirror knowledge                                                   *)
(* ---------------------------------------------------------------- *)

let learn_path t ~path ~asm =
  if not (Hashtbl.mem t.mirrors path) then Hashtbl.replace t.mirrors path asm

(* Everything this node serves itself is mirror knowledge too. *)
let sync_own_paths t =
  List.iter
    (fun (path, asm) -> learn_path t ~path ~asm)
    (Repository.entries (Peer.repository t.peer))

let known_mirrors t asm =
  sync_own_paths t;
  Hashtbl.fold
    (fun p a acc -> if S.equal_ci a asm then p :: acc else acc)
    t.mirrors []
  |> List.sort compare

let mirror_table t =
  sync_own_paths t;
  Hashtbl.fold (fun p a acc -> (p, a) :: acc) t.mirrors []
  |> List.sort compare

let path_universe t = mirror_table t

(* Candidate ranking for the peer's failover pipeline. The advertised
   path leads as long as its host is not known to be in trouble (so the
   default topology behaves exactly as before the cluster existed), and
   drops to last resort once it is; every other known mirror is ranked
   by membership status, then observed RTT, then path order. *)
let rank t ~assembly ~advertised =
  (* A versioned advertised path ([…/name@vN]) pins the fetch to that
     chain revision: every candidate mirror is re-pathed to its own
     versioned form (a mirror that has converged on the chain serves it;
     one that has not simply misses and the pipeline fails over). An
     unversioned fetch conversely never falls over to a versioned path —
     that could silently hand out a superseded revision. *)
  let pin_version =
    match Repository.parse_versioned_path advertised with
    | Some (_, _, (Some _ as v)) -> v
    | _ -> None
  in
  let is_versioned p =
    match Repository.parse_versioned_path p with
    | Some (_, _, Some _) -> true
    | _ -> false
  in
  let reversion v p =
    match Repository.parse_path p with
    | Some (host, _) -> Repository.path_for_version ~host ~assembly ~version:v
    | None -> p
  in
  let weight p =
    match Repository.parse_path p with
    | None -> (2, infinity, p)
    | Some (host, _) ->
        let sw =
          match status t host with
          | Some Alive | None -> 0
          | Some Suspect -> 1
          | Some Dead -> 2
        in
        let ms =
          match Stats.rtt t.stats ~peer:host with
          | Some ms -> ms
          | None -> infinity
        in
        (sw, ms, p)
  in
  let others =
    (match pin_version with
    | None ->
        known_mirrors t assembly |> List.filter (fun p -> not (is_versioned p))
    | Some v ->
        known_mirrors t assembly |> List.map (reversion v)
        |> List.sort_uniq compare)
    |> List.filter (fun p -> not (String.equal p advertised))
    |> List.map weight |> List.sort compare
    |> List.map (fun (_, _, p) -> p)
  in
  let advertised_host_ok =
    match Repository.parse_path advertised with
    | None -> true
    | Some (host, _) -> (
        match status t host with
        | Some Suspect | Some Dead -> false
        | Some Alive | None -> true)
  in
  if advertised_host_ok then advertised :: others else others @ [ advertised ]

(* ---------------------------------------------------------------- *)
(* Anti-entropy exchange                                              *)
(* ---------------------------------------------------------------- *)

let lc = String.lowercase_ascii

let own_summary t ~token ~descs =
  {
    Digest.g_token = token;
    g_types =
      List.map
        (fun (n, g) -> (n, Guid.to_string g))
        (Peer.known_descriptions t.peer);
    g_paths = path_universe t;
    g_chains = Repository.chain_digests (Peer.repository t.peer);
    g_members =
      t.addr
      :: (Hashtbl.fold
            (fun a m acc -> if m.m_status <> Dead then a :: acc else acc)
            t.members []
         |> List.sort compare);
    g_descs = descs;
  }

(* Descriptions we can serve that the other side's digest does not
   mention. *)
let descs_missing_from t (their_types : (string * string) list) =
  let theirs = Hashtbl.create 32 in
  List.iter (fun (n, _) -> Hashtbl.replace theirs (lc n) ()) their_types;
  Peer.known_descriptions t.peer
  |> List.filter_map (fun (n, _) ->
         if Hashtbl.mem theirs (lc n) then None
         else
           Option.map Td.to_xml_string (Peer.local_description t.peer n))

let absorb_summary t (m : Digest.msg) =
  List.iter (fun a -> note_member t a) m.Digest.g_members;
  List.iter (fun (path, asm) -> learn_path t ~path ~asm) m.Digest.g_paths;
  List.iter
    (fun xml ->
      match Td.of_xml_string xml with
      | Ok d -> Peer.learn_description t.peer d
      | Error _ -> ())
    m.Digest.g_descs

(* Chain entries we hold that the other side's digest does not mention —
   the revisions to push back so anti-entropy converges every node on
   the newest chain. *)
let chain_entries_missing_from t (their_chains : (string * (int * string) list) list) =
  let theirs name v d =
    match
      List.find_opt (fun (n, _) -> S.equal_ci n name) their_chains
    with
    | None -> false
    | Some (_, entries) ->
        List.exists (fun (v', d') -> v' = v && String.equal d' d) entries
  in
  let repo = Peer.repository t.peer in
  Repository.chain_digests repo
  |> List.concat_map (fun (name, entries) ->
         List.filter_map
           (fun (v, d) ->
             if theirs name v d then None
             else
               Option.map
                 (fun ve -> ve.Repository.ve_assembly)
                 (Repository.resolve repo ~pin:(Repository.Version v) name))
           entries)

let push_missing_chain_entries t ~dst (m : Digest.msg) =
  List.iter
    (fun asm ->
      Peer.send_gossip t.peer ~dst ~kind:"chain-replica"
        ~body:(Assembly_xml.to_string asm))
    (chain_entries_missing_from t m.Digest.g_chains)

let send_gossip t ~dst ~kind body =
  Metrics.incr ~by:(String.length body) t.mc_digest_bytes;
  Peer.send_gossip t.peer ~dst ~kind ~body

let on_gossip t ~src ~kind ~body =
  saw_traffic_from t src;
  match kind with
  | "digest" -> (
      match Digest.decode body with
      | Error e -> Log.warn (fun f -> f "[%s] bad digest from %s: %s" t.addr src e)
      | Ok m ->
          absorb_summary t m;
          let reply =
            own_summary t ~token:m.Digest.g_token
              ~descs:(descs_missing_from t m.Digest.g_types)
          in
          send_gossip t ~dst:src ~kind:"digest-reply" (Digest.encode reply);
          push_missing_chain_entries t ~dst:src m)
  | "digest-reply" -> (
      match Digest.decode body with
      | Error e ->
          Log.warn (fun f -> f "[%s] bad digest-reply from %s: %s" t.addr src e)
      | Ok m ->
          (match Hashtbl.find_opt t.inflight m.Digest.g_token with
          | Some (sent_at, partner) when String.equal partner src ->
              Hashtbl.remove t.inflight m.Digest.g_token;
              Stats.record_rtt t.stats ~peer:src
                ~ms:(Peer.now_ms t.peer -. sent_at)
          | _ -> ());
          absorb_summary t m;
          (* Third leg: push back whatever the responder still lacks. *)
          let delta = descs_missing_from t m.Digest.g_types in
          if delta <> [] then
            send_gossip t ~dst:src ~kind:"delta"
              (Digest.encode
                 { Digest.empty with g_token = m.Digest.g_token; g_descs = delta });
          push_missing_chain_entries t ~dst:src m)
  | "delta" -> (
      match Digest.decode body with
      | Error e -> Log.warn (fun f -> f "[%s] bad delta from %s: %s" t.addr src e)
      | Ok m -> absorb_summary t m)
  | "replica" -> (
      (* A factor-k placement push: serve the bytes under our own path
         (we need not load the code to mirror it). *)
      match Assembly_xml.of_string body with
      | Error e -> Log.warn (fun f -> f "[%s] bad replica from %s: %s" t.addr src e)
      | Ok asm ->
          let name = asm.Assembly.asm_name in
          let path = Repository.path_for ~host:t.addr ~assembly:name in
          Peer.serve_assembly t.peer ~path asm;
          learn_path t ~path ~asm:name)
  | "chain-replica" -> (
      (* A chain revision push: fold it into our repository's version
         chain under our own versioned path. [learn_version] dedupes by
         content digest, so replays and races converge. The chain merge
         is order-free — entries arrive newest-first or oldest-first
         yield the same chain. *)
      match Assembly_xml.of_string body with
      | Error e ->
          Log.warn (fun f -> f "[%s] bad chain-replica from %s: %s" t.addr src e)
      | Ok asm ->
          let name = asm.Assembly.asm_name in
          let version = asm.Assembly.asm_version in
          if version > 0 then begin
            let path =
              Repository.path_for_version ~host:t.addr ~assembly:name ~version
            in
            if
              Repository.learn_version (Peer.repository t.peer) ~version ~path
                asm
            then learn_path t ~path ~asm:name
          end)
  | other -> Log.warn (fun f -> f "[%s] unknown gossip kind %S from %s" t.addr other src)

let fresh_token t =
  let k = t.next_token in
  t.next_token <- k + 1;
  k

let tick t =
  Metrics.incr t.mc_rounds;
  let partners =
    Hashtbl.fold
      (fun a m acc -> if m.m_status <> Dead then a :: acc else acc)
      t.members []
    |> List.sort compare
  in
  (* A node that believes everyone dead has nothing better to do than
     keep probing them — that is also how a healed partition is
     rediscovered (direct traffic is the only resurrection). *)
  let partners =
    match partners with
    | [] ->
        Hashtbl.fold (fun a _ acc -> a :: acc) t.members []
        |> List.sort compare
    | ps -> ps
  in
  match partners with
  | [] -> ()
  | _ ->
      let partner = Splitmix.pick t.rng (Array.of_list partners) in
      let token = fresh_token t in
      Hashtbl.replace t.inflight token (Peer.now_ms t.peer, partner);
      let digest = own_summary t ~token ~descs:[] in
      send_gossip t ~dst:partner ~kind:"digest" (Digest.encode digest);
      (* Failure detection: an exchange that never completes degrades the
         partner (alive -> suspect -> dead). One-shot timer (on the
         transport clock), so the simulation still quiesces between
         rounds. *)
      Peer.schedule_timer t.peer
        ~info:(Printf.sprintf "probe-timeout#%d" token)
        ~delay_ms:t.probe_timeout_ms
        (fun () ->
          if Hashtbl.mem t.inflight token then begin
            Hashtbl.remove t.inflight token;
            degrade t partner
          end);
      (* Rediscovery: one dead-marked member still gets a probe each
         round (rotating, no timer — it cannot get any deader). Direct
         traffic is the only resurrection, so without this a healed
         partition stays dead until the other side's random picks happen
         to land on us. *)
      let dead =
        Hashtbl.fold
          (fun a m acc -> if m.m_status = Dead then a :: acc else acc)
          t.members []
        |> List.sort compare
      in
      (match dead with
      | [] -> ()
      | _ ->
          let d = List.nth dead (token mod List.length dead) in
          let dt = fresh_token t in
          send_gossip t ~dst:d ~kind:"digest"
            (Digest.encode (own_summary t ~token:dt ~descs:[])))

(* ---------------------------------------------------------------- *)
(* Replicated publication                                             *)
(* ---------------------------------------------------------------- *)

(* Rendezvous (highest-random-weight) hashing: every node computes the
   same deterministic preference order for an assembly's replicas, with
   no coordination and minimal reshuffling on membership change. *)
let placement t ~assembly k =
  Hashtbl.fold
    (fun a m acc -> if m.m_status <> Dead then a :: acc else acc)
    t.members []
  |> List.map (fun a -> (Guid.hash (Guid.of_name (a ^ "|" ^ assembly)), a))
  |> List.sort (fun (sa, aa) (sb, ab) -> compare (sb, ab) (sa, aa))
  |> List.filteri (fun i _ -> i < k)
  |> List.map snd

let publish t asm =
  Peer.publish_assembly t.peer asm;
  let name = asm.Assembly.asm_name in
  learn_path t ~path:(Repository.path_for ~host:t.addr ~assembly:name)
    ~asm:name;
  let replicas = placement t ~assembly:name (t.factor - 1) in
  List.iter
    (fun dst ->
      Log.debug (fun f -> f "[%s] replicating %s to %s" t.addr name dst);
      Peer.send_gossip t.peer ~dst ~kind:"replica"
        ~body:(Assembly_xml.to_string asm);
      (* The push is assumed to land; gossip repairs the record if the
         mirror never materialises. *)
      learn_path t ~path:(Repository.path_for ~host:dst ~assembly:name)
        ~asm:name)
    replicas

(* CAS publication: the versioned analogue of [publish]. The revision
   lands on the local chain first (conflict = somebody else won the
   race; nothing is replicated), then the stamped revision is pushed to
   the factor-k placement as chain entries — mirrors fold it into their
   own chains and serve both the versioned path and, once converged, the
   new head. *)
let publish_cas ?expect t asm =
  match Peer.publish_assembly_cas ?expect t.peer asm with
  | Error _ as e -> e
  | Ok ve ->
      let name = asm.Assembly.asm_name in
      learn_path t ~path:ve.Repository.ve_path ~asm:name;
      learn_path t
        ~path:(Repository.path_for ~host:t.addr ~assembly:name)
        ~asm:name;
      let replicas = placement t ~assembly:name (t.factor - 1) in
      List.iter
        (fun dst ->
          Log.debug (fun f ->
              f "[%s] replicating %s v%d to %s" t.addr name
                ve.Repository.ve_version dst);
          Peer.send_gossip t.peer ~dst ~kind:"chain-replica"
            ~body:(Assembly_xml.to_string ve.Repository.ve_assembly))
        replicas;
      Ok ve

(* ---------------------------------------------------------------- *)
(* Introspection                                                      *)
(* ---------------------------------------------------------------- *)

let gossip_rounds t = Metrics.counter_value t.mc_rounds
let digest_bytes t = Metrics.counter_value t.mc_digest_bytes
let piggybacked_digests t = Metrics.counter_value t.mc_piggybacked

(* FNV-1a digest of this node's cluster-visible state (membership view,
   mirror knowledge, probes in flight, token counter), rendered sorted —
   independent of Hashtbl bucket layout. The model checker combines it
   with {!Peer.fingerprint} for state-hash pruning. *)
let fingerprint t =
  let buf = Buffer.create 256 in
  let add fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  add "node %s next=%d" t.addr t.next_token;
  List.iter
    (fun (a, st) -> add "member %s %s" a (status_name st))
    (members t);
  List.iter (fun (p, a) -> add "mirror %s %s" p a) (mirror_table t);
  Hashtbl.fold (fun tok (_, partner) acc -> (tok, partner) :: acc) t.inflight []
  |> List.sort compare
  |> List.iter (fun (tok, partner) -> add "probe %d %s" tok partner);
  Pti_util.Fnv.hash64 (Buffer.contents buf)

(* ---------------------------------------------------------------- *)
(* Piggybacked gossip                                                 *)
(* ---------------------------------------------------------------- *)

(* Digest to ride on an outgoing object batch. No inflight entry and no
   probe timer: piggybacked digests are opportunistic, so they feed
   dissemination but not failure detection (a missing reply must not
   degrade a partner that simply had nothing to say). *)
let piggyback_for t ~dst =
  if not (Hashtbl.mem t.members dst) then []
  else begin
    let now = Peer.now_ms t.peer in
    let due =
      match Hashtbl.find_opt t.piggy_last dst with
      | Some last -> now -. last >= t.piggyback_interval_ms
      | None -> true
    in
    if not due then []
    else begin
      Hashtbl.replace t.piggy_last dst now;
      let token = fresh_token t in
      let body = Digest.encode (own_summary t ~token ~descs:[]) in
      Metrics.incr ~by:(String.length body) t.mc_digest_bytes;
      Metrics.incr t.mc_piggybacked;
      [ ("digest", body) ]
    end
  end

(* ---------------------------------------------------------------- *)
(* Construction                                                       *)
(* ---------------------------------------------------------------- *)

let create ?(factor = 2) ?(seed = 17L) ?(probe_timeout_ms = 5_000.)
    ?(piggyback_interval_ms = 1_000.) peer =
  if factor < 1 then invalid_arg "Node.create: factor must be >= 1";
  let addr = Peer.address peer in
  let m = Peer.metrics peer in
  let pfx name = Printf.sprintf "cluster.%s.%s" addr name in
  let t =
    {
      peer;
      addr;
      factor;
      probe_timeout_ms;
      rng = Splitmix.create seed;
      stats = Stats.create ();
      members = Hashtbl.create 8;
      mirrors = Hashtbl.create 16;
      inflight = Hashtbl.create 8;
      next_token = 0;
      piggyback_interval_ms;
      piggy_last = Hashtbl.create 8;
      mc_rounds = Metrics.counter m (pfx "gossip.rounds");
      mc_digest_bytes = Metrics.counter m (pfx "digest.bytes");
      mc_piggybacked = Metrics.counter m (pfx "gossip.piggybacked");
    }
  in
  Metrics.gauge_fn m (pfx "members.alive") (fun () ->
      float_of_int (List.length (alive t)));
  Metrics.gauge_fn m (pfx "members.total") (fun () ->
      float_of_int (Hashtbl.length t.members));
  Metrics.gauge_fn m (pfx "mirrors.known") (fun () ->
      sync_own_paths t;
      float_of_int (Hashtbl.length t.mirrors));
  Metrics.gauge_fn m (pfx "replication.factor") (fun () ->
      float_of_int t.factor);
  Metrics.gauge_fn m (pfx "fetch.failovers") (fun () ->
      float_of_int (Peer.fetch_failovers peer));
  Peer.set_gossip_handler peer (fun ~src ~kind ~body ->
      on_gossip t ~src ~kind ~body);
  Peer.set_mirror_provider peer (fun ~assembly ~advertised ->
      rank t ~assembly ~advertised);
  Peer.set_piggyback_provider peer (fun ~dst -> piggyback_for t ~dst);
  sync_own_paths t;
  t
