(** One cluster-aware host: membership, anti-entropy gossip, replicated
    publication and mirror ranking, wrapped around a {!Pti_core.Peer}.

    {2 Membership}

    A node tracks every peer it has heard of as [Alive], [Suspect] or
    [Dead]. Detection is purely observational: a gossip exchange that
    never completes within the probe timeout degrades the partner one
    step (alive -> suspect -> dead, the effect [Net.partition] has);
    direct traffic from a peer — and only direct traffic — resurrects it
    (so healed links recover, but rumours cannot talk a crashed peer
    back to life).

    {2 Anti-entropy}

    {!tick} runs one push-pull round: pick a random non-dead partner,
    send a {e digest} of known type descriptions, download paths and
    members; the partner replies with its own digest plus the full
    descriptions the initiator was missing; the initiator closes with a
    {e delta} of what the partner still lacks. Type metadata thus
    spreads epidemically, off the object hot path — the round-trip also
    feeds the initiator's RTT estimate of the partner
    ({!Pti_net.Stats.record_rtt}).

    Rounds are driven explicitly (by {!Cluster.run_rounds}, the CLI or a
    test), never by self-rescheduling timers, so [Net.run] still
    quiesces.

    {2 Replication and mirrors}

    {!publish} loads and serves an assembly locally, then pushes copies
    to [factor - 1] peers chosen by rendezvous hashing; each recipient
    serves the bytes under its own [asm://] path without loading the
    code. The node's mirror table (own repository plus everything
    learned from gossip) backs the {!Pti_core.Peer.set_mirror_provider}
    hook: candidates are ranked by membership status, then observed
    RTT, with the advertised path first while its host looks healthy
    and demoted to last resort once it is suspect or dead. *)

type status = Alive | Suspect | Dead

val status_name : status -> string

type t

val create : ?factor:int -> ?seed:int64 -> ?probe_timeout_ms:float ->
  ?piggyback_interval_ms:float -> Pti_core.Peer.t -> t
(** Wrap [peer]: installs the gossip handler, mirror provider and batch
    piggyback provider, and registers [cluster.<address>.*] metrics
    (gossip.rounds, gossip.piggybacked, digest.bytes,
    members.alive/total, mirrors.known, replication.factor,
    fetch.failovers) on the peer's registry. [factor] (default 2) is
    the total number of copies {!publish} places, including the
    publisher's own. [piggyback_interval_ms] (default 1000) throttles
    how often an anti-entropy digest rides an outgoing object batch to
    any one destination.
    @raise Invalid_argument when [factor < 1]. *)

val peer : t -> Pti_core.Peer.t
val address : t -> string
val replication_factor : t -> int

(** {1 Membership} *)

val join : t -> string list -> unit
(** Bootstrap: believe the given addresses alive (self is ignored). *)

val mark : t -> string -> status -> unit
(** Administrative override — e.g. a graceful leave marks the leaver
    [Dead] without waiting for detection. *)

val members : t -> (string * status) list
(** Sorted by address; never includes self. *)

val alive : t -> string list
val status : t -> string -> status option

(** {1 Gossip} *)

val tick : t -> unit
(** One anti-entropy round (see above). Run the network afterwards to
    let the exchange complete. *)

val gossip_rounds : t -> int
val digest_bytes : t -> int
(** Total encoded gossip bodies this node has sent (all legs). *)

val piggybacked_digests : t -> int
(** Digests that rode outgoing object batches for free instead of a
    standalone gossip message. These feed dissemination but not failure
    detection (no probe timer is armed for them). *)

val rtt : t -> string -> float option
(** This node's EWMA round-trip estimate of a peer, from completed
    gossip exchanges. *)

val fingerprint : t -> int64
(** FNV-1a digest of the node's cluster-visible state (membership view
    with statuses, mirror knowledge, probes in flight), rendered in
    sorted order. Combined with {!Pti_core.Peer.fingerprint} by the
    model checker's state-hash pruning. *)

val stats : t -> Pti_net.Stats.t
(** The node's private observation store (RTTs live here). *)

(** {1 Replication} *)

val publish : t -> Pti_cts.Assembly.t -> unit
(** Load + serve locally, then push copies to the [factor - 1] replica
    holders chosen by rendezvous hashing over the current non-dead
    membership. *)

val publish_cas : ?expect:string -> t -> Pti_cts.Assembly.t ->
  (Pti_core.Repository.version_entry, Pti_core.Repository.cas_error) result
(** Compare-and-set publication onto this node's version chain
    ({!Pti_core.Peer.publish_assembly_cas}); on success the stamped
    revision is pushed to the [factor - 1] rendezvous replicas as chain
    entries, and anti-entropy gossip (which now carries per-name
    version-chain digests) converges the rest of the cluster on the
    newest chain. A [Conflict] means another publisher won the race:
    nothing is replicated. *)

val placement : t -> assembly:string -> int -> string list
(** The first [k] addresses of the deterministic rendezvous order —
    exposed for tests and capacity planning. *)

val known_mirrors : t -> string -> string list
(** Every download path this node believes serves the assembly
    (case-insensitive), sorted. *)

val rank : t -> assembly:string -> advertised:string -> string list
(** The candidate order the node's mirror provider hands the peer's
    failover pipeline: the advertised path first while its host is not
    suspect/dead (last resort otherwise), then every other known mirror
    by (membership status, observed RTT, path). *)

val mirror_table : t -> (string * string) list
(** All known [(path, assembly)] pairs, sorted by path. *)
