module Net = Pti_net.Net
module Transport = Pti_transport.Transport
module Peer = Pti_core.Peer
module Message = Pti_core.Message

type t = {
  tr : Message.t Transport.t;
  nodes : (string * Node.t) list;  (* creation order *)
}

let create ?mode ?codec ?metrics ?(factor = 2) ?(seed = 7L)
    ?request_timeout_ms ?fetch_retries ?fetch_backoff_ms ?probe_timeout_ms
    ?handles ?batch_bytes ?tdesc_binary ?handle_table_capacity
    ?piggyback_interval_ms ?net ?transport addrs =
  if addrs = [] then invalid_arg "Cluster.create: no addresses";
  let tr =
    match (net, transport) with
    | Some n, None -> Transport.of_net n
    | None, Some tr -> tr
    | Some _, Some _ ->
        invalid_arg "Cluster.create: pass ~net or ~transport, not both"
    | None, None -> invalid_arg "Cluster.create: needs ~net or ~transport"
  in
  let nodes =
    List.mapi
      (fun i addr ->
        let peer =
          Peer.create ?mode ?codec ?metrics ?request_timeout_ms
            ?fetch_retries ?fetch_backoff_ms ?handles ?batch_bytes
            ?tdesc_binary ?handle_table_capacity ~transport:tr addr
        in
        (* Distinct deterministic streams per node: same cluster seed,
           different partner choices. *)
        let node_seed = Int64.add seed (Int64.of_int ((i + 1) * 7919)) in
        ( addr,
          Node.create ~factor ~seed:node_seed ?probe_timeout_ms
            ?piggyback_interval_ms peer ))
      addrs
  in
  let t = { tr; nodes } in
  (* Common bootstrap: everyone starts knowing the full roster. *)
  List.iter (fun (_, n) -> Node.join n addrs) nodes;
  t

let transport t = t.tr
let net t =
  match Transport.sim_net t.tr with
  | Some n -> n
  | None ->
      invalid_arg
        "Cluster.net: cluster runs on a socket transport, not the simulated \
         network"
let addresses t = List.map fst t.nodes
let nodes t = List.map snd t.nodes

let node t addr =
  match List.assoc_opt addr t.nodes with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Cluster.node: unknown address %S" addr)

let peer t addr = Node.peer (node t addr)

let run t = Transport.run t.tr

let run_rounds t n =
  for _ = 1 to n do
    List.iter (fun (_, node) -> Node.tick node) t.nodes;
    Transport.run t.tr
  done

(* A crash is a partition from everyone at once: the host stays
   registered on the transport (in-flight and future traffic to it is
   dropped) and the survivors' failure detectors notice on their own. *)
let crash t addr =
  List.iter
    (fun (other, _) ->
      if other <> addr then Transport.partition t.tr addr other)
    t.nodes

let heal t addr =
  List.iter
    (fun (other, _) -> if other <> addr then Transport.heal t.tr addr other)
    t.nodes
