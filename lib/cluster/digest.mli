(** Wire codec of the anti-entropy gossip exchange.

    One message shape serves all three legs of the push-pull protocol
    (see {!Node}): the opening {e digest} summarises what the sender
    knows ([g_types], [g_paths], [g_members], no [g_descs]); the
    {e digest-reply} repeats the responder's own summary and attaches
    the full type descriptions the initiator reported missing; the
    closing {e delta} carries only descriptions. The [kind] field of
    {!Pti_core.Message.Gossip} tells the legs apart. *)

type msg = {
  g_token : int;
      (** Exchange correlator: the initiator stamps its send time under
          this token and turns the reply into an RTT observation. *)
  g_types : (string * string) list;
      (** Known type descriptions: (qualified name, GUID rendering). *)
  g_paths : (string * string) list;
      (** Known download paths: (path, assembly name). *)
  g_chains : (string * (int * string) list) list;
      (** Per-assembly version chains: (assembly name, entries), each
          entry a (version, content digest) pair ascending by version —
          what anti-entropy compares to converge every node on the
          newest chain. *)
  g_members : string list;  (** Known cluster member addresses. *)
  g_descs : string list;  (** Full type-description XML documents. *)
}

val empty : msg

val encode : msg -> string
(** The body is prefixed with an FNV-1a checksum line so wire damage is
    detected rather than absorbed into cluster state (a flipped byte in
    a member address would otherwise become a phantom peer).
    @raise Invalid_argument when an atom contains a tab or newline. *)

val decode : string -> (msg, string) result
(** Total: malformed or corrupt input yields [Error];
    [decode (encode m) = Ok m]. Bodies without a checksum line are
    accepted unverified. *)
