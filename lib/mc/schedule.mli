(** Replayable schedule strings.

    A schedule records, for each choice point, the index the exploration
    picked in the sorted choiceable enabled-event list. Indices are
    positional, so any sublist is again a valid schedule (each index is
    reinterpreted against the enabled set the replay actually reaches) —
    which is what lets the generic ddmin shrinker minimise them. *)

val encode : int list -> string
(** Dot-separated indices; the empty schedule encodes as ["-"]. *)

val decode : string -> (int list, string) result
(** Inverse of {!encode}; [""] and ["-"] both decode to the empty
    schedule. *)
