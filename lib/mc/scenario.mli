(** Closed, fault-free worlds for systematic exploration.

    A scenario builds a fresh deterministic simulation — peers, workload,
    issued sends — whose {e only} remaining nondeterminism is the order
    of enabled deliveries and local actions. The explorer re-executes a
    scenario from scratch for every schedule prefix, so construction
    must be cheap and draw no ambient randomness (fixed seeds only).

    The invariant set reuses the chaos harness's checks
    ({!Pti_fault.Invariant}): conservation, exactly-once, no-mangle,
    trap rejection, verdict stability, metrics-vs-trace — plus
    {!Pti_fault.Invariant.fetch_economy}, which bounds subprotocol
    traffic by what the in-flight dedup guards promise, and (cluster
    scenario) membership convergence. *)

type kind =
  | Protocol  (** Two peers, a burst of same-typed objects, classic wire. *)
  | Cluster
      (** A replicated cluster: replica pushes, gossip ticks as
          explorable actions, membership must converge all-alive. *)
  | Wire
      (** Two peers with handle negotiation + batching + binary tdescs;
          later sends and a receiver-side handle-table drop are
          explorable actions. *)
  | Evolution
      (** Live schema evolution: every object is the evolving family
          (CAS-published onto a version chain), and the v2 publication
          is an explorable action racing the sends, description fetches
          and conformance probes. Adds
          {!Pti_fault.Invariant.upgrade_safety}: each delivery must
          decode against exactly the revision its send negotiated. *)

val kind_name : kind -> string
val kind_of_string : string -> kind option

type spec = {
  s_kind : kind;
  s_peers : int;  (** Cluster size (cluster scenario only); min 2. *)
  s_objects : int;  (** Objects sent; min 1. *)
  s_fanout_bug : bool;
      (** Create the receiver with [share_inflight:false] — the
          historical fetch fan-out bug — for the known-bug regression. *)
  s_cas_bug : bool;
      (** Evolution scenario: publish v2 by advancing the chain head
          directly instead of through the atomic CAS + registry upgrade
          — the historical torn publish — for the known-bug
          regression. *)
}

val spec :
  ?peers:int -> ?objects:int -> ?fanout_bug:bool -> ?cas_bug:bool -> kind ->
  spec
(** Defaults: 3 peers, 2 objects, bugs off. *)

type instance = {
  i_net : Pti_core.Message.t Pti_net.Net.t;
      (** The live network: drive it via {!Pti_net.Net.enabled} /
          {!Pti_net.Net.fire} / {!Pti_net.Net.run}. *)
  i_check : unit -> Pti_fault.Invariant.violation list;
      (** Evaluate the property set — call only at a terminal (quiescent)
          state; may mutate checker caches, so do not explore further
          afterwards. *)
  i_fingerprint : unit -> int64;
      (** Combined FNV digest of all peer/node state, for hash pruning. *)
}

val make : spec -> instance
(** A fresh world with all sends issued; equal specs build bit-identical
    worlds. *)
