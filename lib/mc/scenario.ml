module Net = Pti_net.Net
module Sim = Pti_net.Sim
module Stats = Pti_net.Stats
module Trace = Pti_net.Trace
module Peer = Pti_core.Peer
module Message = Pti_core.Message
module Checker = Pti_conformance.Checker
module Workload = Pti_demo.Workload
module Invariant = Pti_fault.Invariant
module Chaos = Pti_fault.Chaos
module Cl = Pti_cluster.Cluster
module Node = Pti_cluster.Node
module Fnv = Pti_util.Fnv
module Repository = Pti_core.Repository
module Value = Pti_cts.Value

(* Closed worlds for the model checker. Unlike the chaos harness these
   are entirely fault-free and jitter-free: the only nondeterminism left
   is the delivery/action order, which is exactly what the explorer
   enumerates. Nothing here draws ambient randomness, so re-executing a
   prefix always reproduces the same state. *)

type kind = Protocol | Cluster | Wire | Evolution

let kind_name = function
  | Protocol -> "protocol"
  | Cluster -> "cluster"
  | Wire -> "wire"
  | Evolution -> "evolution"

let kind_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "protocol" -> Some Protocol
  | "cluster" -> Some Cluster
  | "wire" -> Some Wire
  | "evolution" -> Some Evolution
  | _ -> None

type spec = {
  s_kind : kind;
  s_peers : int;
  s_objects : int;
  s_fanout_bug : bool;
  s_cas_bug : bool;
}

let spec ?(peers = 3) ?(objects = 2) ?(fanout_bug = false) ?(cas_bug = false)
    kind =
  {
    s_kind = kind;
    s_peers = max 2 peers;
    s_objects = max 1 objects;
    s_fanout_bug = fanout_bug;
    s_cas_bug = cas_bug;
  }

type instance = {
  i_net : Message.t Net.t;
  i_check : unit -> Invariant.violation list;
  i_fingerprint : unit -> int64;
}

(* Object [i]'s workload family: everything shares family 0 (conformant)
   — same-typed bursts are what the in-flight dedup guards protect — and
   with three or more objects the last one is a trap, so the reject path
   is part of the explored space too. *)
let family_of ~objects i =
  if objects >= 3 && i = objects - 1 then (1, Workload.Trap_missing)
  else (0, Workload.Conformant)

let families_used ~objects =
  List.init objects (family_of ~objects) |> List.sort_uniq compare

(* The invariant set shared by every scenario, evaluated at a terminal
   (quiescent) state. [receiver] is the peer whose interest pipeline the
   objects ran through. On a fault-free net nothing may be lost, mangled
   or double-applied, verdicts must be schedule-independent, and the
   subprotocol traffic must stay within what the in-flight dedup
   guarantees — however the deliveries were interleaved. *)
let check_common ?(revisions = 1) ~net ~trace ~receiver ~objects ~expected
    ~trap_keys () =
  let events = Peer.events receiver in
  let delivered_vals =
    List.filter_map
      (function Peer.Delivered { value; _ } -> Some value | _ -> None)
      events
  in
  let rejected =
    List.length
      (List.filter (function Peer.Rejected _ -> true | _ -> false) events)
  in
  let failed = List.length (List.filter Chaos.is_terminal_failure events) in
  let got =
    List.map
      (fun v ->
        match Chaos.name_age v with
        | Some (n, a) -> (n, (n, a))
        | None ->
            ( "<unextractable:" ^ Pti_cts.Value.type_name v ^ ">",
              ("?", -1) ))
      delivered_vals
  in
  let delivered_keys = List.map fst got in
  let checker = Peer.checker receiver in
  let verdict_str v =
    if Checker.verdict_ok v then "conformant" else "not-conformant"
  in
  let triples =
    List.filter_map
      (fun (index, flavor) ->
        let tn = Workload.person_name ~index ~flavor in
        match
          ( Peer.local_description receiver tn,
            Peer.local_description receiver Workload.interest_person )
        with
        | Some actual, Some interest ->
            let before =
              verdict_str (Checker.check checker ~actual ~interest)
            in
            Checker.clear_cache checker;
            let after =
              verdict_str (Checker.check checker ~actual ~interest)
            in
            Some (tn, before, after)
        | _ -> None)
      (families_used ~objects)
  in
  let stats = Net.stats net in
  let distinct = List.length (families_used ~objects) in
  let conformant_distinct =
    List.length
      (List.filter
         (fun (_, f) -> f = Workload.Conformant)
         (families_used ~objects))
  in
  let count_pairs =
    List.filter_map
      (fun c ->
        if c = Stats.Control then None
        else
          Some
            ( Stats.category_name c,
              Stats.messages stats c,
              Trace.count trace ~category:c () ))
      Stats.all_categories
  in
  Invariant.conservation ~sent:objects
    ~delivered:(List.length delivered_vals)
    ~rejected ~failed
    ~net_lost:(Net.lost_for net Stats.Object_msg)
  @ Invariant.exactly_once ~delivered_keys
  @ Invariant.no_mangle ~expected ~got
  @ Invariant.trap_never_delivered ~trap_keys ~delivered_keys
  @ Invariant.verdict_stability triples
  (* Each family needs at most its Person + Address descriptions and
     (when conformant, hence downloaded) one assembly — whatever the
     interleaving, thanks to the shared in-flight exchanges. A live
     upgrade multiplies the need by the number of [revisions] on the
     chain: each revision's descriptions and assembly are distinct. *)
  @ Invariant.fetch_economy ~label:"tdesc requests"
      ~actual:(Stats.messages stats Stats.Tdesc_request)
      ~allowed:(2 * distinct * revisions)
  @ Invariant.fetch_economy ~label:"assembly requests"
      ~actual:(Stats.messages stats Stats.Asm_request)
      ~allowed:(conformant_distinct * revisions)
  @ Invariant.metrics_match_trace count_pairs

(* Publish the used families on [sender], register the news interest on
   [receiver], and issue the object sends; returns (expected, traps). *)
let setup_workload ~publish ~sender ~receiver ~objects ~send =
  List.iter
    (fun (index, flavor) -> publish (Workload.family ~index ~flavor))
    (families_used ~objects);
  Peer.install_assembly receiver (Workload.interest_assembly ());
  Peer.register_interest receiver ~interest:Workload.interest_person
    (fun ~from:_ _ -> ());
  let expected = ref [] and trap_keys = ref [] in
  for i = 0 to objects - 1 do
    let index, flavor = family_of ~objects i in
    let name = Printf.sprintf "p%d" i in
    let age = 20 + i in
    let v =
      Workload.make_person (Peer.registry sender) ~index ~flavor ~name ~age
    in
    (match flavor with
    | Workload.Conformant -> expected := (name, (name, age)) :: !expected
    | _ -> trap_keys := name :: !trap_keys);
    send i v
  done;
  (!expected, !trap_keys)

let combine_fingerprints fps =
  let buf = Buffer.create 64 in
  List.iter (fun fp -> Buffer.add_string buf (Printf.sprintf "%Lx " fp)) fps;
  Fnv.hash64 (Buffer.contents buf)

(* Two peers, classic wire. All sends are issued at setup, so the
   initial enabled set is the burst of concurrent object deliveries —
   the exact situation the in-flight fetch guards exist for. With
   [s_fanout_bug] the receiver is created without those guards. *)
let make_two_peer ~wire spec =
  let net = Net.create ~jitter_ms:0. () in
  let trace = Trace.attach net in
  let handles = wire in
  let batch_bytes = if wire then Some 4096 else None in
  let tdesc_binary = wire in
  let mk addr ~share_inflight =
    Peer.create ~handles ?batch_bytes ~tdesc_binary ~share_inflight ~net addr
  in
  let alice = mk "alice" ~share_inflight:true in
  let bob = mk "bob" ~share_inflight:(not spec.s_fanout_bug) in
  let objects = spec.s_objects in
  let sim = Net.sim net in
  let send i v =
    if (not wire) || i = 0 then Peer.send_value alice ~dst:"bob" v
    else
      (* Wire scenario: later sends are explorable local actions, so the
         explorer can order them against batch flushes and the handle
         table drop below. *)
      Sim.schedule sim
        ~label:(Sim.Act { owner = "alice"; info = Printf.sprintf "send p%d" i })
        ~delay:0.
        (fun () -> Peer.send_value alice ~dst:"bob" v)
  in
  let expected, trap_keys =
    setup_workload ~publish:(Peer.publish_assembly alice) ~sender:alice
      ~receiver:bob ~objects ~send
  in
  if wire && objects >= 2 then
    (* Losing bob's learned bindings is another explorable action: fired
       before the first delivery it is a no-op, between deliveries it
       forces a NAK/re-bind round — all orders must stay invariant. *)
    Sim.schedule sim
      ~label:(Sim.Act { owner = "bob"; info = "drop-handle-tables" })
      ~delay:0.
      (fun () -> Peer.drop_handle_tables bob);
  {
    i_net = net;
    i_check =
      check_common ~net ~trace ~receiver:bob ~objects ~expected ~trap_keys;
    i_fingerprint =
      (fun () ->
        combine_fingerprints [ Peer.fingerprint alice; Peer.fingerprint bob ]);
  }

(* A small replicated cluster: publication pushes replicas, gossip
   rounds are explorable actions, and one object burst crosses the
   cluster. Membership must converge to all-alive under every
   interleaving (there are no faults to observe). *)
let make_cluster spec =
  let net = Net.create ~jitter_ms:0. () in
  let trace = Trace.attach net in
  let hosts = List.init spec.s_peers (Printf.sprintf "n%d") in
  let cl = Cl.create ~factor:2 ~seed:17L ~net hosts in
  let sender = Cl.peer cl (List.hd hosts) in
  let receiver_addr = List.nth hosts (List.length hosts - 1) in
  let receiver = Cl.peer cl receiver_addr in
  let objects = spec.s_objects in
  let sim = Net.sim net in
  let send _i v = Peer.send_value sender ~dst:receiver_addr v in
  let expected, trap_keys =
    setup_workload
      ~publish:(fun asm -> Node.publish (Cl.node cl (List.hd hosts)) asm)
      ~sender ~receiver ~objects ~send
  in
  (* Two anti-entropy rounds per node, as choosable actions. *)
  List.iteri
    (fun ni addr ->
      let node = Cl.node cl addr in
      for r = 0 to 1 do
        Sim.schedule_at sim
          ~label:
            (Sim.Act { owner = addr; info = Printf.sprintf "gossip-tick %d" r })
          ~at:(1. +. float_of_int ((r * spec.s_peers) + ni))
          (fun () -> Node.tick node)
      done)
    hosts;
  let check () =
    let rows =
      List.map
        (fun a ->
          let node = Cl.node cl a in
          ( a,
            List.filter_map
              (fun (m, st) ->
                if List.mem m hosts then Some (m, Node.status_name st)
                else None)
              (Node.members node) ))
        hosts
    in
    check_common ~net ~trace ~receiver ~objects ~expected ~trap_keys ()
    @ Invariant.membership_converged rows
  in
  {
    i_net = net;
    i_check = check;
    i_fingerprint =
      (fun () ->
        combine_fingerprints
          (List.concat_map
             (fun a ->
               [ Node.fingerprint (Cl.node cl a); Peer.fingerprint (Cl.peer cl a) ])
             hosts));
  }

(* Live schema evolution racing the type subprotocols: every object is
   the evolving family, the v2 CAS publication is an explorable action,
   and the explorer orders it against sends, description fetches and
   conformance probes. Each send records the chain-head revision it
   negotiated; {!Invariant.upgrade_safety} demands every delivery decode
   against exactly that revision, whatever the interleaving.

   With [s_cas_bug] the publication reverts to the historical torn
   publish: the chain head is advanced directly ([learn_version], the
   mirror-replica primitive) without the atomic registry upgrade that
   [publish_assembly_cas] performs. Schedules that send after the torn
   flip then negotiate v2 while the publisher still builds v1 payloads
   — the cross-decode the invariant exists to catch. *)
let make_evolution spec =
  let net = Net.create ~jitter_ms:0. () in
  let trace = Trace.attach net in
  let alice = Peer.create ~net "alice" in
  let bob = Peer.create ~net "bob" in
  let objects = spec.s_objects in
  let sim = Net.sim net in
  let v1 = Workload.family ~index:0 ~flavor:Workload.Conformant in
  let asm_name = v1.Pti_cts.Assembly.asm_name in
  (match Peer.publish_assembly_cas alice v1 with
  | Ok _ -> ()
  | Error _ -> invalid_arg "Scenario.make_evolution: seed CAS failed");
  Peer.install_assembly bob (Workload.interest_assembly ());
  Peer.register_interest bob ~interest:Workload.interest_person (fun ~from:_ _ -> ());
  let head_version () =
    match Repository.resolve (Peer.repository alice) asm_name with
    | Some ve -> ve.Repository.ve_version
    | None -> 1
  in
  let expected = ref [] and negotiated = ref [] in
  for i = 0 to objects - 1 do
    let name = Printf.sprintf "p%d" i in
    let age = 20 + i in
    expected := (name, (name, age)) :: !expected;
    let send () =
      let v =
        Workload.make_person (Peer.registry alice) ~index:0
          ~flavor:Workload.Conformant ~name ~age
      in
      negotiated := (name, head_version ()) :: !negotiated;
      Peer.send_value alice ~dst:"bob" v
    in
    if i = 0 then send ()
    else
      Sim.schedule sim
        ~label:(Sim.Act { owner = "alice"; info = Printf.sprintf "send p%d" i })
        ~delay:0. send
  done;
  Sim.schedule sim
    ~label:(Sim.Act { owner = "alice"; info = "publish-v2" })
    ~delay:0.
    (fun () ->
      let v2 =
        Workload.family_v ~version:2 ~index:0 ~flavor:Workload.Conformant
      in
      if spec.s_cas_bug then
        ignore
          (Repository.learn_version (Peer.repository alice) ~version:2
             ~path:
               (Repository.path_for_version ~host:"alice" ~assembly:asm_name
                  ~version:2)
             v2)
      else
        match Repository.resolve (Peer.repository alice) asm_name with
        | None -> ()
        | Some head -> (
            match
              Peer.publish_assembly_cas ~expect:head.Repository.ve_digest alice
                v2
            with
            | Ok _ | Error _ -> ()));
  let check () =
    let delivered_vals =
      List.filter_map
        (function Peer.Delivered { value; _ } -> Some value | _ -> None)
        (Peer.events bob)
    in
    let decoded =
      List.filter_map
        (fun v ->
          match Chaos.name_age v with
          | None -> None
          | Some (n, _) ->
              let dv =
                match v with
                | Value.Vobj o | Value.Vproxy { Value.px_target = Value.Vobj o; _ }
                  -> (
                    match Value.get_field o "email" with
                    | Some _ -> 2
                    | None -> 1)
                | _ -> 1
              in
              Some (n, dv))
        delivered_vals
    in
    check_common ~revisions:2 ~net ~trace ~receiver:bob ~objects
      ~expected:!expected ~trap_keys:[] ()
    @ Invariant.upgrade_safety ~negotiated:!negotiated ~decoded
  in
  {
    i_net = net;
    i_check = check;
    i_fingerprint =
      (fun () ->
        combine_fingerprints [ Peer.fingerprint alice; Peer.fingerprint bob ]);
  }

let make spec =
  match spec.s_kind with
  | Protocol -> make_two_peer ~wire:false spec
  | Wire -> make_two_peer ~wire:true spec
  | Cluster -> make_cluster spec
  | Evolution -> make_evolution spec
