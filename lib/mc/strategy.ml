module Sim = Pti_net.Sim
module Splitmix = Pti_util.Splitmix

(* A strategy is the pluggable "which enabled event next?" policy: FIFO
   reproduces the plain simulator (and the chaos harness's ordering on a
   fault-free net), random walks sample the schedule space, replay pins
   a recorded schedule, and the DFS enumerator in [Explore] is the
   systematic one. [pick] returns an index into the sorted choiceable
   enabled list; out-of-range picks are clamped by the driver. *)

type t = {
  name : string;
  pick : step:int -> enabled:Sim.info list -> int;
}

let fifo = { name = "fifo"; pick = (fun ~step:_ ~enabled:_ -> 0) }

let random ~seed =
  let rng = Splitmix.create seed in
  {
    name = Printf.sprintf "random(%Ld)" seed;
    pick =
      (fun ~step:_ ~enabled ->
        match List.length enabled with 0 -> 0 | n -> Splitmix.int rng n);
  }

(* Past the recorded choices, fall back to FIFO — a shrunk (shorter)
   schedule still runs to quiescence. *)
let replay choices =
  {
    name = Printf.sprintf "replay(%s)" (Schedule.encode choices);
    pick =
      (fun ~step ~enabled:_ ->
        match List.nth_opt choices step with Some i -> i | None -> 0);
  }
