(* A schedule is the list of choices an exploration made: at each choice
   point, the index into the sorted choiceable enabled-event list. The
   wire form is dot-separated ("2.0.1"); the empty schedule — pure FIFO
   continuation — prints as "-" so it survives a command line. *)

let encode = function
  | [] -> "-"
  | choices -> String.concat "." (List.map string_of_int choices)

let decode s =
  let s = String.trim s in
  if String.equal s "" || String.equal s "-" then Ok []
  else
    let parts = String.split_on_char '.' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
          match int_of_string_opt p with
          | Some i when i >= 0 -> go (i :: acc) rest
          | _ -> Error (Printf.sprintf "bad schedule component %S" p))
    in
    go [] parts
