(** Stateless DFS enumeration of event interleavings with DPOR pruning.

    The explorer drives a {!Scenario.instance} through every ordering of
    its choiceable enabled events (deliveries and local actions; guard
    timers are deferred to the terminal run — see {!Pti_net.Sim.label})
    up to a depth bound, re-executing the scenario from scratch whenever
    the DFS diverges from the instance it holds. Two prunings keep the
    walk tractable:

    - {e sleep sets} (a dynamic partial-order reduction): after a branch
      on event [e] is fully explored, sibling branches need not re-fire
      [e] until a dependent event (same target host) wakes it;
    - {e state hashing}: a branch whose FNV fingerprint (peer state +
      pending labels + per-category message counts) was already explored
      with at least as much remaining depth is cut.

    Terminal states are run to quiescence ({!Pti_net.Net.run} — firing
    any deferred timers) and checked against the scenario's invariant
    set. The first violation aborts the walk with its schedule. *)

type config = {
  depth : int;  (** Choice points per schedule; beyond it, FIFO. *)
  budget : int;  (** Max terminal states evaluated. *)
  dpor : bool;  (** Sleep-set pruning. *)
  state_hash : bool;  (** Visited-state pruning. *)
  max_seconds : float;  (** Wall-clock bound for the whole walk. *)
}

val default_config : config
(** depth 8, budget 20k, both prunings on, 300 s. *)

type result = {
  schedules : int;  (** Terminal states evaluated. *)
  replays : int;  (** Scenario re-executions (incl. the first). *)
  sleep_pruned : int;  (** Branches cut by sleep sets. *)
  hash_pruned : int;  (** Branches cut by state hashing. *)
  deepest : int;  (** Longest schedule prefix reached. *)
  exhausted : bool;
      (** The bounded space was fully covered (no budget/time cut). *)
  violation : (int list * Pti_fault.Invariant.violation list) option;
      (** First failing schedule, if any — feed it to {!shrink} and
          encode with {!Schedule.encode} for replay. *)
}

val run :
  ?config:config -> (unit -> Scenario.instance) -> result
(** [run mk] explores all schedules of the scenario built by [mk]. *)

val run_schedule :
  (unit -> Scenario.instance) -> int list -> Pti_fault.Invariant.violation list
(** Replay one schedule on a fresh instance (indices clamped against the
    enabled set, FIFO past the end), run to quiescence, and check. This
    is the semantics behind [pti explore --schedule]. *)

val run_strategy :
  ?max_steps:int ->
  (unit -> Scenario.instance) ->
  Strategy.t ->
  Pti_fault.Invariant.violation list
(** Drive a fresh instance with a {!Strategy.t} to quiescence and check
    — the bridge between the chaos-style (fifo/random) and systematic
    modes. *)

val shrink : (unit -> Scenario.instance) -> int list -> int list
(** ddmin a violating schedule to a locally minimal one that still
    violates (by repeated {!run_schedule}). *)

val pp_result : Format.formatter -> result -> unit
