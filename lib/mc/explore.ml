module Net = Pti_net.Net
module Sim = Pti_net.Sim
module Stats = Pti_net.Stats
module Invariant = Pti_fault.Invariant
module Shrink = Pti_fault.Shrink
module Fnv = Pti_util.Fnv

(* Stateless model checking over the Net scheduler hook: enumerate all
   interleavings of choiceable enabled events (deliveries and local
   actions; guard timers are deferred — see [Sim.label]) up to a depth
   bound, re-executing the scenario from scratch for every divergence.
   Sleep sets (a dynamic partial-order reduction) skip schedules that
   only commute independent events, and state hashing prunes branches
   that reconverged to an already-covered state. Every terminal state is
   run to quiescence and checked against the scenario's invariants. *)

type config = {
  depth : int;  (* choice points per schedule before FIFO takeover *)
  budget : int;  (* terminal evaluations *)
  dpor : bool;
  state_hash : bool;
  max_seconds : float;  (* wall-clock bound (Sys.time based) *)
}

let default_config =
  { depth = 8; budget = 20_000; dpor = true; state_hash = true;
    max_seconds = 300. }

type result = {
  schedules : int;
  replays : int;
  sleep_pruned : int;
  hash_pruned : int;
  deepest : int;
  exhausted : bool;
  violation : (int list * Invariant.violation list) option;
}

(* Timers only matter when something was lost; on the fault-free nets
   the scenarios build, exploring "timeout beats reply" would enumerate
   physically impossible schedules (and spuriously violate delivery
   invariants). The terminal [Net.run] still fires them in time order. *)
let choiceable net =
  List.filter
    (fun (i : Sim.info) ->
      match i.i_label with Sim.Timer _ -> false | _ -> true)
    (Net.enabled net)

let fire_choice net (infos : Sim.info list) idx =
  match List.nth_opt infos idx with
  | None -> false
  | Some i -> Net.fire net ~seq:i.Sim.i_seq

(* Events touching different hosts commute: per-host state is disjoint,
   and the shared Net/Stats counters they both bump are sums (order
   invisible to every invariant). Unlabelled events are conservatively
   dependent with everything. *)
let target = function
  | Sim.Deliver { dst; _ } -> Some dst
  | Sim.Act { owner; _ } | Sim.Timer { owner; _ } -> Some owner
  | Sim.Internal -> None

let independent a b =
  match (target a, target b) with
  | Some ha, Some hb -> not (String.equal ha hb)
  | _ -> false

(* The pruning key: every peer's fingerprint, the multiset of pending
   event labels (timestamps excluded — firing order, not wall position,
   is what the invariants see) and the per-category message counts (the
   fetch-economy invariant reads those at the terminal, so states that
   differ in them must not merge). *)
let state_key (inst : Scenario.instance) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "%Lx\n" (inst.Scenario.i_fingerprint ()));
  Net.enabled inst.Scenario.i_net
  |> List.map (fun (i : Sim.info) -> Format.asprintf "%a" Sim.pp_label i.Sim.i_label)
  |> List.sort String.compare
  |> List.iter (fun s ->
         Buffer.add_string buf s;
         Buffer.add_char buf '\n');
  let stats = Net.stats inst.Scenario.i_net in
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "%s=%d\n" (Stats.category_name c)
           (Stats.messages stats c)))
    Stats.all_categories;
  Fnv.hash64 (Buffer.contents buf)

exception Stop

let run ?(config = default_config) mk =
  let started = Sys.time () in
  let schedules = ref 0 and replays = ref 0 in
  let sleep_pruned = ref 0 and hash_pruned = ref 0 in
  let deepest = ref 0 in
  let exhausted = ref true in
  let violation = ref None in
  (* hash -> deepest remaining depth it was explored with; re-visit only
     with a larger remaining depth (the earlier visit covered less). *)
  let visited : (int64, int) Hashtbl.t = Hashtbl.create 4096 in
  let check_time () =
    if Sys.time () -. started > config.max_seconds then begin
      exhausted := false;
      raise Stop
    end
  in
  let exec_prefix prefix =
    incr replays;
    let inst = mk () in
    List.iter
      (fun idx ->
        ignore (fire_choice inst.Scenario.i_net (choiceable inst.Scenario.i_net) idx))
      prefix;
    inst
  in
  let terminal (inst : Scenario.instance) prefix =
    if !schedules >= config.budget then begin
      exhausted := false;
      raise Stop
    end;
    incr schedules;
    Net.run inst.Scenario.i_net;
    match inst.Scenario.i_check () with
    | [] -> ()
    | vs ->
        violation := Some (prefix, vs);
        raise Stop
  in
  let rec dfs (inst : Scenario.instance) prefix sleep depth_left =
    check_time ();
    if List.length prefix > !deepest then deepest := List.length prefix;
    let cs = choiceable inst.Scenario.i_net in
    if cs = [] || depth_left = 0 then terminal inst prefix
    else begin
      let pruned =
        config.state_hash
        && begin
             let h = state_key inst in
             match Hashtbl.find_opt visited h with
             | Some d when d >= depth_left -> true
             | _ ->
                 Hashtbl.replace visited h depth_left;
                 false
           end
      in
      if pruned then incr hash_pruned
      else begin
        let labels = List.map (fun (i : Sim.info) -> i.Sim.i_label) cs in
        let sleep = ref sleep in
        (* The first explored child continues on [inst] in place; the
           rest re-execute the prefix — the stateless-MC trade. *)
        let inst_available = ref true in
        List.iteri
          (fun idx lab ->
            if config.dpor && List.exists (fun s -> s = lab) !sleep then
              incr sleep_pruned
            else begin
              let child_sleep =
                List.filter (fun s -> independent s lab) !sleep
              in
              let child =
                if !inst_available then begin
                  inst_available := false;
                  ignore (fire_choice inst.Scenario.i_net cs idx);
                  inst
                end
                else begin
                  let i = exec_prefix prefix in
                  ignore (fire_choice i.Scenario.i_net (choiceable i.Scenario.i_net) idx);
                  i
                end
              in
              dfs child (prefix @ [ idx ]) child_sleep (depth_left - 1);
              if config.dpor then sleep := lab :: !sleep
            end)
          labels
      end
    end
  in
  (try dfs (exec_prefix []) [] [] config.depth with Stop -> ());
  {
    schedules = !schedules;
    replays = !replays;
    sleep_pruned = !sleep_pruned;
    hash_pruned = !hash_pruned;
    deepest = !deepest;
    exhausted = !exhausted;
    violation = !violation;
  }

(* ------------------------- single schedules ------------------------- *)

(* Replay one schedule (indices clamped against whatever is enabled when
   the replay reaches them — that is what makes index sublists valid
   shrink candidates), then run to quiescence and check. *)
let run_schedule mk choices =
  let inst = mk () in
  List.iter
    (fun idx ->
      let cs = choiceable inst.Scenario.i_net in
      match cs with
      | [] -> ()
      | _ ->
          let idx = min idx (List.length cs - 1) in
          ignore (fire_choice inst.Scenario.i_net cs idx))
    choices;
  Net.run inst.Scenario.i_net;
  inst.Scenario.i_check ()

let run_strategy ?(max_steps = 10_000) mk (strategy : Strategy.t) =
  let inst = mk () in
  let step = ref 0 in
  let continue = ref true in
  while !continue && !step < max_steps do
    match choiceable inst.Scenario.i_net with
    | [] -> continue := false
    | cs ->
        let idx = strategy.Strategy.pick ~step:!step ~enabled:cs in
        let idx = max 0 (min idx (List.length cs - 1)) in
        ignore (fire_choice inst.Scenario.i_net cs idx);
        incr step
  done;
  Net.run inst.Scenario.i_net;
  inst.Scenario.i_check ()

let shrink mk choices =
  Shrink.ddmin ~fails:(fun s -> run_schedule mk s <> []) choices

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>schedules evaluated: %d (replays %d, deepest %d)@,\
     pruned: %d by sleep sets, %d by state hash@,\
     space %s"
    r.schedules r.replays r.deepest r.sleep_pruned r.hash_pruned
    (if r.exhausted then "exhausted"
     else "NOT exhausted (budget/time bound hit)");
  (match r.violation with
  | None -> ()
  | Some (sched, vs) ->
      Format.fprintf ppf "@,violating schedule: %s" (Schedule.encode sched);
      List.iter
        (fun v -> Format.fprintf ppf "@,  %a" Invariant.pp_violation v)
        vs);
  Format.fprintf ppf "@]"
