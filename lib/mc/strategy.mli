(** Pluggable event-selection strategies over the {!Pti_net.Net.enabled}
    scheduler hook.

    A strategy picks, at each choice point, an index into the sorted
    list of choiceable enabled events (deliveries and local actions;
    guard timers are never offered — see {!Pti_net.Sim.label}). The
    chaos harness's ordering on a fault-free network is exactly {!fifo};
    the DFS enumerator in {!Explore} is the systematic alternative. *)

type t = {
  name : string;
  pick : step:int -> enabled:Pti_net.Sim.info list -> int;
      (** Out-of-range indices are clamped by the driver. *)
}

val fifo : t
(** Always the earliest event — the plain simulator's order. *)

val random : seed:int64 -> t
(** Uniform choice at every step, deterministic per seed. *)

val replay : int list -> t
(** Pin a recorded schedule; past its end, continue FIFO. *)
