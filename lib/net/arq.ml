type policy = {
  retransmit_ms : float;
  max_retries : int;
  ack_bytes : int;
}

let default = { retransmit_ms = 50.; max_retries = 5; ack_bytes = 16 }

let backoff_ms p ~attempt =
  let exp = Float.min 5. (float_of_int (max 0 attempt)) in
  Float.min (p.retransmit_ms *. 32.) (p.retransmit_ms *. Float.pow 2. exp)

let give_up p ~attempt = attempt > p.max_retries

module Ledger = struct
  type t = {
    mutable next_id : int;
    acked : (int, unit) Hashtbl.t;
    delivered : (int, unit) Hashtbl.t;
  }

  let create () =
    { next_id = 0; acked = Hashtbl.create 64; delivered = Hashtbl.create 64 }

  let fresh_id t =
    let id = t.next_id in
    t.next_id <- id + 1;
    id

  let mark_acked t id = Hashtbl.replace t.acked id ()
  let is_acked t id = Hashtbl.mem t.acked id
  let mark_delivered t id = Hashtbl.replace t.delivered id ()
  let is_delivered t id = Hashtbl.mem t.delivered id
  let issued t = t.next_id
end
