(** Discrete-event simulation core.

    A priority queue of timestamped thunks; time advances only when events
    fire, so runs are deterministic and as fast as the host CPU. Simulated
    time is in milliseconds (matching the paper's reporting unit).

    {1 Event labels}

    Every event carries a {!label} classifying what it is, so an external
    scheduler (the model checker, [pti_mc]) can distinguish message
    deliveries — which a real asynchronous network may reorder
    arbitrarily — from local sender actions and from guard timers that
    only matter when something was lost. Unlabelled events default to
    {!Internal} and are treated conservatively (reorderable, dependent
    with everything). *)

type label =
  | Deliver of { src : string; dst : string; info : string }
      (** A message arriving at host [dst]. The network may deliver
          concurrently pending messages in any order. *)
  | Act of { owner : string; info : string }
      (** A local action at [owner] (batch flush, gossip tick, a
          scenario's scheduled send): a unit of work whose order against
          concurrent deliveries is genuinely nondeterministic. *)
  | Timer of { owner : string; info : string }
      (** A guard timer (request timeout, retry backoff, renegotiation
          park): fires only when the thing it guards failed to happen.
          The model checker does not treat timers as schedule choice
          points — it defers them to quiescence. *)
  | Internal  (** Unclassified (default). *)

val pp_label : Format.formatter -> label -> unit

type info = { i_at : float; i_seq : int; i_label : label }
(** A pending event as the scheduler hook exposes it: timestamp,
    stable sequence number (the firing handle) and label. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time (ms). *)

val schedule : t -> ?label:label -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay]. Negative delays are
    clamped to 0. Events at equal times fire in scheduling order. *)

val schedule_at : t -> ?label:label -> at:float -> (unit -> unit) -> unit

val schedule_cancellable : t -> ?label:label -> delay:float ->
  (unit -> unit) -> (unit -> unit)
(** Like {!schedule}, returning a cancel thunk. A cancelled event is
    skipped without advancing the clock, so armed-but-unneeded timers
    (request timeouts, leases) do not stretch the simulated run. *)

val step : t -> bool
(** Fire the next event; [false] when the queue is empty. *)

val run : t -> unit
(** Run to quiescence. *)

val run_until : t -> float -> unit
(** Fire every event with a timestamp [<=] the given time, advancing the
    clock to exactly that time. *)

val pending : t -> int

val pending_events : t -> info list
(** Every pending non-cancelled event, sorted by [(at, seq)] — the
    deterministic enabled set an exploration strategy chooses from. *)

val fire : t -> seq:int -> bool
(** Fire the pending event with this sequence number {e now}, regardless
    of its position in the queue; [false] if no such (non-cancelled)
    event is pending. The clock advances to [max clock at] — it never
    moves backwards — so firing events out of time order models an
    asynchronous network delaying the others. *)
