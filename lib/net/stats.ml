type category =
  | Object_msg
  | Tdesc_request
  | Tdesc_reply
  | Asm_request
  | Asm_reply
  | Invoke_request
  | Invoke_reply
  | Gossip
  | Handle_ctl
  | Control

let all_categories =
  [
    Object_msg; Tdesc_request; Tdesc_reply; Asm_request; Asm_reply;
    Invoke_request; Invoke_reply; Gossip; Handle_ctl; Control;
  ]

let category_name = function
  | Object_msg -> "object"
  | Tdesc_request -> "tdesc-req"
  | Tdesc_reply -> "tdesc-reply"
  | Asm_request -> "asm-req"
  | Asm_reply -> "asm-reply"
  | Invoke_request -> "invoke-req"
  | Invoke_reply -> "invoke-reply"
  | Gossip -> "gossip"
  | Handle_ctl -> "handle-ctl"
  | Control -> "control"

let index = function
  | Object_msg -> 0
  | Tdesc_request -> 1
  | Tdesc_reply -> 2
  | Asm_request -> 3
  | Asm_reply -> 4
  | Invoke_request -> 5
  | Invoke_reply -> 6
  | Gossip -> 7
  | Handle_ctl -> 8
  | Control -> 9

let ncat = List.length all_categories

let of_index i =
  if i < 0 || i >= ncat then invalid_arg "Stats.of_index"
  else List.nth all_categories i

module Metrics = Pti_obs.Metrics

(* Latency samples per category, with a memoized sorted view: percentile
   queries no longer sort the sample list on every call — the sorted
   array is built once per snapshot and invalidated by the next sample. *)
type lat = {
  mutable samples : float list;  (* reversed *)
  mutable count : int;
  mutable sorted : float array option;  (* memo; None = stale *)
}

type t = {
  bytes : int array;
  messages : int array;
  latencies : lat array;
  hists : Metrics.histogram array option;  (* net.latency_ms.<category> *)
  (* Per-remote-peer round-trip EWMA: the latency signal a host accumulates
     about the peers it talks to, which the cluster's mirror selector
     ranks download candidates by. *)
  rtts : (string, float) Hashtbl.t;
}

let create ?metrics () =
  let hists =
    Option.map
      (fun m ->
        Array.init ncat (fun i ->
            let c = List.nth all_categories i in
            Metrics.histogram m ("net.latency_ms." ^ category_name c)))
      metrics
  in
  let t =
    {
      bytes = Array.make ncat 0;
      messages = Array.make ncat 0;
      latencies =
        Array.init ncat (fun _ -> { samples = []; count = 0; sorted = None });
      hists;
      rtts = Hashtbl.create 8;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
      List.iter
        (fun c ->
          let i = index c in
          Metrics.gauge_fn m
            ("net.bytes." ^ category_name c)
            (fun () -> float_of_int t.bytes.(i));
          Metrics.gauge_fn m
            ("net.messages." ^ category_name c)
            (fun () -> float_of_int t.messages.(i)))
        all_categories;
      Metrics.gauge_fn m "net.bytes.total" (fun () ->
          float_of_int (Array.fold_left ( + ) 0 t.bytes));
      Metrics.gauge_fn m "net.messages.total" (fun () ->
          float_of_int (Array.fold_left ( + ) 0 t.messages)));
  t

let record t c ~bytes =
  let i = index c in
  t.bytes.(i) <- t.bytes.(i) + bytes;
  t.messages.(i) <- t.messages.(i) + 1

let bytes t c = t.bytes.(index c)
let messages t c = t.messages.(index c)
let total_bytes t = Array.fold_left ( + ) 0 t.bytes
let total_messages t = Array.fold_left ( + ) 0 t.messages

let reset t =
  Array.fill t.bytes 0 ncat 0;
  Array.fill t.messages 0 ncat 0;
  Array.iter
    (fun l ->
      l.samples <- [];
      l.count <- 0;
      l.sorted <- None)
    t.latencies;
  Hashtbl.reset t.rtts

let record_latency t c ~ms =
  let l = t.latencies.(index c) in
  l.samples <- ms :: l.samples;
  l.count <- l.count + 1;
  l.sorted <- None;
  match t.hists with
  | Some hs -> Metrics.observe hs.(index c) ms
  | None -> ()

let latency_samples t c = List.rev t.latencies.(index c).samples

let sorted_latencies l =
  match l.sorted with
  | Some a -> a
  | None ->
      let a = Array.of_list l.samples in
      Array.sort Float.compare a;
      l.sorted <- Some a;
      a

let latency_percentile t c p =
  if p < 0. || p > 1. then invalid_arg "Stats.latency_percentile";
  let l = t.latencies.(index c) in
  if l.count = 0 then None
  else begin
    let sorted = sorted_latencies l in
    let n = Array.length sorted in
    let rank =
      min (n - 1) (int_of_float (Float.round (p *. float_of_int (n - 1))))
    in
    Some sorted.(rank)
  end

(* EWMA smoothing for RTT observations: heavy enough that one slow
   round-trip does not reorder mirrors, light enough to track drift. *)
let rtt_alpha = 0.3

let record_rtt t ~peer ~ms =
  match Hashtbl.find_opt t.rtts peer with
  | None -> Hashtbl.replace t.rtts peer ms
  | Some old ->
      Hashtbl.replace t.rtts peer (((1. -. rtt_alpha) *. old) +. (rtt_alpha *. ms))

let rtt t ~peer = Hashtbl.find_opt t.rtts peer

let rtts t =
  Hashtbl.fold (fun p v acc -> (p, v) :: acc) t.rtts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let merge a b =
  let t = create () in
  for i = 0 to ncat - 1 do
    t.bytes.(i) <- a.bytes.(i) + b.bytes.(i);
    t.messages.(i) <- a.messages.(i) + b.messages.(i);
    let la = a.latencies.(i) and lb = b.latencies.(i) in
    t.latencies.(i) <-
      {
        samples = lb.samples @ la.samples;
        count = la.count + lb.count;
        sorted = None;
      }
  done;
  (* Observations, not sums: keep both sides' EWMAs, averaging where the
     same peer was observed by both. *)
  Hashtbl.iter (fun p v -> Hashtbl.replace t.rtts p v) a.rtts;
  Hashtbl.iter
    (fun p v ->
      match Hashtbl.find_opt t.rtts p with
      | None -> Hashtbl.replace t.rtts p v
      | Some w -> Hashtbl.replace t.rtts p ((v +. w) /. 2.))
    b.rtts;
  t

let pp ppf t =
  Format.fprintf ppf "@[<v>%-14s %10s %12s@," "category" "messages" "bytes";
  List.iter
    (fun c ->
      if messages t c > 0 then
        Format.fprintf ppf "%-14s %10d %12d@," (category_name c)
          (messages t c) (bytes t c))
    all_categories;
  Format.fprintf ppf "%-14s %10d %12d@]" "total" (total_messages t)
    (total_bytes t)
