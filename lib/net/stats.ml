type category =
  | Object_msg
  | Tdesc_request
  | Tdesc_reply
  | Asm_request
  | Asm_reply
  | Invoke_request
  | Invoke_reply
  | Gossip
  | Handle_ctl
  | Control

let all_categories =
  [
    Object_msg; Tdesc_request; Tdesc_reply; Asm_request; Asm_reply;
    Invoke_request; Invoke_reply; Gossip; Handle_ctl; Control;
  ]

let category_name = function
  | Object_msg -> "object"
  | Tdesc_request -> "tdesc-req"
  | Tdesc_reply -> "tdesc-reply"
  | Asm_request -> "asm-req"
  | Asm_reply -> "asm-reply"
  | Invoke_request -> "invoke-req"
  | Invoke_reply -> "invoke-reply"
  | Gossip -> "gossip"
  | Handle_ctl -> "handle-ctl"
  | Control -> "control"

let index = function
  | Object_msg -> 0
  | Tdesc_request -> 1
  | Tdesc_reply -> 2
  | Asm_request -> 3
  | Asm_reply -> 4
  | Invoke_request -> 5
  | Invoke_reply -> 6
  | Gossip -> 7
  | Handle_ctl -> 8
  | Control -> 9

let ncat = List.length all_categories

let of_index i =
  if i < 0 || i >= ncat then invalid_arg "Stats.of_index"
  else List.nth all_categories i

module Metrics = Pti_obs.Metrics

(* Latency samples per category. Samples land in a growable unboxed
   float array (insertion is allocation-free, amortized — no cons cell
   per sample, which matters at 10^6 inserts), in arrival order. The
   sorted view for percentile queries is maintained incrementally: a
   query sorts only the tail that arrived since the previous query and
   merges it into the already-sorted prefix — O(k log k + n) instead of
   the full O(n log n) re-sort the old invalidate-on-insert memo paid
   on every snapshot of a hot run. *)
type lat = {
  mutable buf : float array;  (* arrival order; first [count] are live *)
  mutable count : int;
  mutable sorted : float array;  (* sorted copy of the first [sorted_len] *)
  mutable sorted_len : int;
}

type t = {
  bytes : int array;
  messages : int array;
  latencies : lat array;
  hists : Metrics.histogram array option;  (* net.latency_ms.<category> *)
  (* Per-remote-peer round-trip EWMA: the latency signal a host accumulates
     about the peers it talks to, which the cluster's mirror selector
     ranks download candidates by. *)
  rtts : (string, float) Hashtbl.t;
}

let create ?metrics () =
  let hists =
    Option.map
      (fun m ->
        Array.init ncat (fun i ->
            let c = List.nth all_categories i in
            Metrics.histogram m ("net.latency_ms." ^ category_name c)))
      metrics
  in
  let t =
    {
      bytes = Array.make ncat 0;
      messages = Array.make ncat 0;
      latencies =
        Array.init ncat (fun _ ->
            { buf = [||]; count = 0; sorted = [||]; sorted_len = 0 });
      hists;
      rtts = Hashtbl.create 8;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
      List.iter
        (fun c ->
          let i = index c in
          Metrics.gauge_fn m
            ("net.bytes." ^ category_name c)
            (fun () -> float_of_int t.bytes.(i));
          Metrics.gauge_fn m
            ("net.messages." ^ category_name c)
            (fun () -> float_of_int t.messages.(i)))
        all_categories;
      Metrics.gauge_fn m "net.bytes.total" (fun () ->
          float_of_int (Array.fold_left ( + ) 0 t.bytes));
      Metrics.gauge_fn m "net.messages.total" (fun () ->
          float_of_int (Array.fold_left ( + ) 0 t.messages)));
  t

let record t c ~bytes =
  let i = index c in
  t.bytes.(i) <- t.bytes.(i) + bytes;
  t.messages.(i) <- t.messages.(i) + 1

let bytes t c = t.bytes.(index c)
let messages t c = t.messages.(index c)
let total_bytes t = Array.fold_left ( + ) 0 t.bytes
let total_messages t = Array.fold_left ( + ) 0 t.messages

let reset t =
  Array.fill t.bytes 0 ncat 0;
  Array.fill t.messages 0 ncat 0;
  Array.iter
    (fun l ->
      l.buf <- [||];
      l.count <- 0;
      l.sorted <- [||];
      l.sorted_len <- 0)
    t.latencies;
  Hashtbl.reset t.rtts

let lat_push l ms =
  let cap = Array.length l.buf in
  if l.count = cap then begin
    let grown = Array.make (max 16 (2 * cap)) 0. in
    Array.blit l.buf 0 grown 0 l.count;
    l.buf <- grown
  end;
  l.buf.(l.count) <- ms;
  l.count <- l.count + 1

let record_latency t c ~ms =
  lat_push t.latencies.(index c) ms;
  match t.hists with
  | Some hs -> Metrics.observe hs.(index c) ms
  | None -> ()

let latency_samples t c =
  let l = t.latencies.(index c) in
  Array.to_list (Array.sub l.buf 0 l.count)

(* Extend the sorted prefix to cover every sample: sort just the new
   tail, merge it with the (already sorted) prefix. Idempotent when
   nothing arrived since the last call. *)
let sorted_latencies l =
  if l.sorted_len < l.count then begin
    let k = l.count - l.sorted_len in
    let tail = Array.sub l.buf l.sorted_len k in
    Array.sort Float.compare tail;
    let merged = Array.make l.count 0. in
    let i = ref 0 and j = ref 0 in
    for m = 0 to l.count - 1 do
      if !i < l.sorted_len && (!j >= k || l.sorted.(!i) <= tail.(!j))
      then begin
        merged.(m) <- l.sorted.(!i);
        incr i
      end
      else begin
        merged.(m) <- tail.(!j);
        incr j
      end
    done;
    l.sorted <- merged;
    l.sorted_len <- l.count
  end;
  l.sorted

let latency_percentile t c p =
  if p < 0. || p > 1. then invalid_arg "Stats.latency_percentile";
  let l = t.latencies.(index c) in
  if l.count = 0 then None
  else begin
    let sorted = sorted_latencies l in
    let n = Array.length sorted in
    let rank =
      min (n - 1) (int_of_float (Float.round (p *. float_of_int (n - 1))))
    in
    Some sorted.(rank)
  end

(* EWMA smoothing for RTT observations: heavy enough that one slow
   round-trip does not reorder mirrors, light enough to track drift. *)
let rtt_alpha = 0.3

let record_rtt t ~peer ~ms =
  match Hashtbl.find_opt t.rtts peer with
  | None -> Hashtbl.replace t.rtts peer ms
  | Some old ->
      Hashtbl.replace t.rtts peer (((1. -. rtt_alpha) *. old) +. (rtt_alpha *. ms))

let rtt t ~peer = Hashtbl.find_opt t.rtts peer

let rtts t =
  Hashtbl.fold (fun p v acc -> (p, v) :: acc) t.rtts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let merge a b =
  let t = create () in
  for i = 0 to ncat - 1 do
    t.bytes.(i) <- a.bytes.(i) + b.bytes.(i);
    t.messages.(i) <- a.messages.(i) + b.messages.(i);
    let la = a.latencies.(i) and lb = b.latencies.(i) in
    t.latencies.(i) <-
      {
        buf =
          Array.append
            (Array.sub la.buf 0 la.count)
            (Array.sub lb.buf 0 lb.count);
        count = la.count + lb.count;
        sorted = [||];
        sorted_len = 0;
      }
  done;
  (* Observations, not sums: keep both sides' EWMAs, averaging where the
     same peer was observed by both. *)
  Hashtbl.iter (fun p v -> Hashtbl.replace t.rtts p v) a.rtts;
  Hashtbl.iter
    (fun p v ->
      match Hashtbl.find_opt t.rtts p with
      | None -> Hashtbl.replace t.rtts p v
      | Some w -> Hashtbl.replace t.rtts p ((v +. w) /. 2.))
    b.rtts;
  t

let pp ppf t =
  Format.fprintf ppf "@[<v>%-14s %10s %12s@," "category" "messages" "bytes";
  List.iter
    (fun c ->
      if messages t c > 0 then
        Format.fprintf ppf "%-14s %10d %12d@," (category_name c)
          (messages t c) (bytes t c))
    all_categories;
  Format.fprintf ppf "%-14s %10d %12d@]" "total" (total_messages t)
    (total_bytes t)
