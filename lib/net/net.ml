module Splitmix = Pti_util.Splitmix

type address = string

(* The knobs live in [Arq] so the socket transports can reuse the same
   policy record (reconnect backoff mirrors the retry schedule). *)
type reliability = Arq.policy = {
  retransmit_ms : float;
  max_retries : int;
  ack_bytes : int;
}

let default_reliability = Arq.default

type 'a fault_hooks = {
  fh_down : now:float -> src:address -> dst:address -> bool;
  fh_drop : now:float -> src:address -> dst:address -> bool;
  fh_duplicates : now:float -> src:address -> dst:address -> int;
  fh_delay : now:float -> src:address -> dst:address -> float;
  fh_corrupt : now:float -> src:address -> dst:address -> 'a -> 'a option;
}

let no_faults =
  {
    fh_down = (fun ~now:_ ~src:_ ~dst:_ -> false);
    fh_drop = (fun ~now:_ ~src:_ ~dst:_ -> false);
    fh_duplicates = (fun ~now:_ ~src:_ ~dst:_ -> 0);
    fh_delay = (fun ~now:_ ~src:_ ~dst:_ -> 0.);
    fh_corrupt = (fun ~now:_ ~src:_ ~dst:_ _ -> None);
  }

type 'a t = {
  sim : Sim.t;
  stats : Stats.t;
  rng : Splitmix.t;
  default_latency : float;
  default_bandwidth : float;
  drop_rate : float;
  jitter : float;
  reliability : reliability option;
  handlers : (address, net:'a t -> src:address -> 'a -> unit) Hashtbl.t;
  known : (address, unit) Hashtbl.t;  (* every address ever registered *)
  links : (string, float * float) Hashtbl.t;  (* "a|b" -> latency,bw *)
  partitions : (string, unit) Hashtbl.t;
  ledger : Arq.Ledger.t;  (* ids issued, acks seen, deliveries made *)
  lost_by : (Stats.category, int) Hashtbl.t;
  mutable dropped : int;
  mutable retransmitted : int;
  mutable lost : int;
  mutable faults : 'a fault_hooks option;
  mutable integrity : ('a -> bool) option;
  mutable injected_drops : int;
  mutable injected_duplicates : int;
  mutable corrupted_frames : int;
  mutable integrity_drops : int;
  mutable observer :
    (now:float -> src:address -> dst:address -> category:Stats.category ->
     size:int -> attempt:int -> unit)
    option;
}

let link_key a b = if a <= b then a ^ "|" ^ b else b ^ "|" ^ a

let create ?(default_latency_ms = 1.0) ?(default_bandwidth_bpms = 1000.)
    ?(drop_rate = 0.) ?(jitter_ms = 0.) ?reliability ?(seed = 42L) ?metrics ()
    =
  {
    sim = Sim.create ();
    stats = Stats.create ?metrics ();
    rng = Splitmix.create seed;
    default_latency = default_latency_ms;
    default_bandwidth = default_bandwidth_bpms;
    drop_rate;
    jitter = jitter_ms;
    reliability;
    handlers = Hashtbl.create 16;
    known = Hashtbl.create 16;
    links = Hashtbl.create 16;
    partitions = Hashtbl.create 4;
    ledger = Arq.Ledger.create ();
    lost_by = Hashtbl.create 8;
    dropped = 0;
    retransmitted = 0;
    lost = 0;
    faults = None;
    integrity = None;
    injected_drops = 0;
    injected_duplicates = 0;
    corrupted_frames = 0;
    integrity_drops = 0;
    observer = None;
  }

let sim t = t.sim
let stats t = t.stats

let add_host t addr ~handler =
  if Hashtbl.mem t.handlers addr then
    invalid_arg (Printf.sprintf "Net.add_host: duplicate address %S" addr);
  Hashtbl.replace t.known addr ();
  Hashtbl.replace t.handlers addr handler

let remove_host t addr = Hashtbl.remove t.handlers addr

let set_link t a b ~latency_ms ~bandwidth_bpms =
  Hashtbl.replace t.links (link_key a b) (latency_ms, bandwidth_bpms)

let on_send t f = t.observer <- Some f

let observe t ~src ~dst ~category ~size ~attempt =
  match t.observer with
  | None -> ()
  | Some f -> f ~now:(Sim.now t.sim) ~src ~dst ~category ~size ~attempt

let partition t a b = Hashtbl.replace t.partitions (link_key a b) ()
let heal t a b = Hashtbl.remove t.partitions (link_key a b)

let set_fault_hooks t f = t.faults <- f
let set_integrity t f = t.integrity <- f

let link_params t a b =
  match Hashtbl.find_opt t.links (link_key a b) with
  | Some p -> p
  | None -> (t.default_latency, t.default_bandwidth)

let partitioned t a b = Hashtbl.mem t.partitions (link_key a b)

(* The link is severed — statically partitioned or inside an injected
   down/flap/crash window. Checked at send time and again on arrival so
   a cut kills messages already in flight. *)
let severed t ~src ~dst =
  partitioned t src dst
  || match t.faults with
     | None -> false
     | Some f -> f.fh_down ~now:(Sim.now t.sim) ~src ~dst

(* One transmission attempt is lost when the link is severed, the
   ambient drop coin says so, or an injected loss window fires. *)
let attempt_lost t ~src ~dst =
  severed t ~src ~dst
  || (t.drop_rate > 0. && Splitmix.float t.rng < t.drop_rate)
  || match t.faults with
     | None -> false
     | Some f ->
         let hit = f.fh_drop ~now:(Sim.now t.sim) ~src ~dst in
         if hit then t.injected_drops <- t.injected_drops + 1;
         hit

let fault_duplicates t ~src ~dst =
  match t.faults with
  | None -> 0
  | Some f -> max 0 (f.fh_duplicates ~now:(Sim.now t.sim) ~src ~dst)

let fault_delay t ~src ~dst =
  match t.faults with
  | None -> 0.
  | Some f -> max 0. (f.fh_delay ~now:(Sim.now t.sim) ~src ~dst)

(* Corruption is sampled per transmitted copy, at send time (so the rng
   draw order is deterministic); the mangled payload rides to arrival. *)
let fault_corrupt t ~src ~dst payload =
  match t.faults with
  | None -> payload
  | Some f -> (
      match f.fh_corrupt ~now:(Sim.now t.sim) ~src ~dst payload with
      | None -> payload
      | Some p ->
          t.corrupted_frames <- t.corrupted_frames + 1;
          p)

let transfer_delay t ~src ~dst ~size =
  let latency, bandwidth = link_params t src dst in
  let jitter = if t.jitter > 0. then Splitmix.float t.rng *. t.jitter else 0. in
  latency +. (float_of_int size /. bandwidth) +. jitter
  +. fault_delay t ~src ~dst

(* Frame-level integrity (the abstract link checksum): a frame that
   fails the predicate is discarded before the handler sees it. Under
   ARQ the discard also suppresses the ack, so the sender retransmits. *)
let frame_ok t payload =
  match t.integrity with
  | None -> true
  | Some chk ->
      let ok = chk payload in
      if not ok then t.integrity_drops <- t.integrity_drops + 1;
      ok

(* The handler is resolved on arrival, not at send time, so a host
   removed (crashed) mid-flight just loses the frame instead of
   delivering into the void — and a restarted host picks deliveries
   back up. Returns whether the payload was handed over. *)
let deliver t ~src ~dst payload =
  match Hashtbl.find_opt t.handlers dst with
  | None ->
      t.dropped <- t.dropped + 1;
      false
  | Some handler ->
      handler ~net:t ~src payload;
      true

let count_lost t category =
  t.lost <- t.lost + 1;
  let n = Option.value ~default:0 (Hashtbl.find_opt t.lost_by category) in
  Hashtbl.replace t.lost_by category (n + 1)

let send t ?info ~src ~dst ~category ~size payload =
  if not (Hashtbl.mem t.known dst) then
    invalid_arg (Printf.sprintf "Net.send: unknown host %S" dst);
  (* The delivery label carries the sender's description of the payload
     (when given) so the model checker can tell concurrently pending
     messages of the same category apart. *)
  let info =
    match info with Some i -> i | None -> Stats.category_name category
  in
  let deliver_label = Sim.Deliver { src; dst; info } in
  match t.reliability with
  | None ->
      (* Each copy (the original plus injected duplicates) is charged,
         observed, lossed and corrupted independently. *)
      let copies = 1 + fault_duplicates t ~src ~dst in
      if copies > 1 then
        t.injected_duplicates <- t.injected_duplicates + (copies - 1);
      for _copy = 1 to copies do
        Stats.record t.stats category ~bytes:size;
        observe t ~src ~dst ~category ~size ~attempt:0;
        if attempt_lost t ~src ~dst then t.dropped <- t.dropped + 1
        else begin
          let payload = fault_corrupt t ~src ~dst payload in
          let delay = transfer_delay t ~src ~dst ~size in
          Sim.schedule t.sim ~label:deliver_label ~delay (fun () ->
              (* A partition cut while the message was in flight kills it
                 too — a cable does not care how far the packet got. *)
              if severed t ~src ~dst then t.dropped <- t.dropped + 1
              else if frame_ok t payload then begin
                if deliver t ~src ~dst payload then
                  Stats.record_latency t.stats category ~ms:delay
              end)
        end
      done
  | Some r ->
      let msg_id = Arq.Ledger.fresh_id t.ledger in
      let sent_at = Sim.now t.sim in
      (* On (each) arrival: deliver exactly once, always (re-)ack. A
         partition cut mid-flight loses the attempt (the retransmission
         timer is already armed and will retry). A corrupt frame is
         discarded without an ack, so corruption triggers retransmission
         just like loss. *)
      let on_arrival payload () =
        if severed t ~src ~dst then t.dropped <- t.dropped + 1
        else if frame_ok t payload then begin
          if not (Arq.Ledger.is_delivered t.ledger msg_id) then begin
            if deliver t ~src ~dst payload then begin
              Arq.Ledger.mark_delivered t.ledger msg_id;
              Stats.record_latency t.stats category
                ~ms:(Sim.now t.sim -. sent_at)
            end
          end;
          if Arq.Ledger.is_delivered t.ledger msg_id then begin
            (* The ack travels back and may itself be lost. *)
            Stats.record t.stats Stats.Control ~bytes:r.ack_bytes;
            if attempt_lost t ~src:dst ~dst:src then
              t.dropped <- t.dropped + 1
            else begin
              let ack_delay =
                transfer_delay t ~src:dst ~dst:src ~size:r.ack_bytes
              in
              let ack_label =
                Sim.Deliver
                  { src = dst; dst = src; info = Printf.sprintf "ack#%d" msg_id }
              in
              Sim.schedule t.sim ~label:ack_label ~delay:ack_delay (fun () ->
                  if severed t ~src:dst ~dst:src then
                    t.dropped <- t.dropped + 1
                  else Arq.Ledger.mark_acked t.ledger msg_id)
            end
          end
        end
      in
      let launch () =
        if attempt_lost t ~src ~dst then t.dropped <- t.dropped + 1
        else begin
          let payload = fault_corrupt t ~src ~dst payload in
          let delay = transfer_delay t ~src ~dst ~size in
          Sim.schedule t.sim ~label:deliver_label ~delay (on_arrival payload)
        end
      in
      let rec attempt n =
        let copies = 1 + fault_duplicates t ~src ~dst in
        if copies > 1 then
          t.injected_duplicates <- t.injected_duplicates + (copies - 1);
        for _copy = 1 to copies do
          Stats.record t.stats category ~bytes:size;
          observe t ~src ~dst ~category ~size ~attempt:n;
          launch ()
        done;
        if n > 0 then t.retransmitted <- t.retransmitted + 1;
        (* Retransmission timer: fires whether or not this attempt
           arrived; a lost ack also triggers a retry. *)
        let timer_label =
          Sim.Timer
            { owner = src; info = Printf.sprintf "retransmit#%d" msg_id }
        in
        Sim.schedule t.sim ~label:timer_label ~delay:r.retransmit_ms (fun () ->
            if not (Arq.Ledger.is_acked t.ledger msg_id) then
              if n < r.max_retries then attempt (n + 1)
              else if not (Arq.Ledger.is_delivered t.ledger msg_id) then
                count_lost t category)
      in
      attempt 0

let run t = Sim.run t.sim
let now_ms t = Sim.now t.sim

(* Sorted: Hashtbl iteration order depends on insertion history and
   hashing, which would leak nondeterminism into anything that walks
   the host list (schedule replay must be bit-identical). *)
let hosts t =
  Hashtbl.fold (fun a _ acc -> a :: acc) t.handlers []
  |> List.sort String.compare

let enabled t = Sim.pending_events t.sim
let fire t ~seq = Sim.fire t.sim ~seq
let dropped_messages t = t.dropped
let retransmissions t = t.retransmitted
let lost_messages t = t.lost

let lost_for t category =
  Option.value ~default:0 (Hashtbl.find_opt t.lost_by category)

let injected_drops t = t.injected_drops
let injected_duplicates t = t.injected_duplicates
let corrupted_frames t = t.corrupted_frames
let integrity_drops t = t.integrity_drops
