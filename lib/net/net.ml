module Splitmix = Pti_util.Splitmix

type address = string

type reliability = {
  retransmit_ms : float;
  max_retries : int;
  ack_bytes : int;
}

let default_reliability =
  { retransmit_ms = 50.; max_retries = 5; ack_bytes = 16 }

type 'a t = {
  sim : Sim.t;
  stats : Stats.t;
  rng : Splitmix.t;
  default_latency : float;
  default_bandwidth : float;
  drop_rate : float;
  jitter : float;
  reliability : reliability option;
  handlers : (address, net:'a t -> src:address -> 'a -> unit) Hashtbl.t;
  links : (string, float * float) Hashtbl.t;  (* "a|b" -> latency,bw *)
  partitions : (string, unit) Hashtbl.t;
  acked : (int, unit) Hashtbl.t;  (* message ids confirmed by an ack *)
  delivered : (int, unit) Hashtbl.t;  (* message ids handed to a handler *)
  mutable next_msg_id : int;
  mutable dropped : int;
  mutable retransmitted : int;
  mutable lost : int;
  mutable observer :
    (now:float -> src:address -> dst:address -> category:Stats.category ->
     size:int -> attempt:int -> unit)
    option;
}

let link_key a b = if a <= b then a ^ "|" ^ b else b ^ "|" ^ a

let create ?(default_latency_ms = 1.0) ?(default_bandwidth_bpms = 1000.)
    ?(drop_rate = 0.) ?(jitter_ms = 0.) ?reliability ?(seed = 42L) ?metrics ()
    =
  {
    sim = Sim.create ();
    stats = Stats.create ?metrics ();
    rng = Splitmix.create seed;
    default_latency = default_latency_ms;
    default_bandwidth = default_bandwidth_bpms;
    drop_rate;
    jitter = jitter_ms;
    reliability;
    handlers = Hashtbl.create 16;
    links = Hashtbl.create 16;
    partitions = Hashtbl.create 4;
    acked = Hashtbl.create 64;
    delivered = Hashtbl.create 64;
    next_msg_id = 0;
    dropped = 0;
    retransmitted = 0;
    lost = 0;
    observer = None;
  }

let sim t = t.sim
let stats t = t.stats

let add_host t addr ~handler =
  if Hashtbl.mem t.handlers addr then
    invalid_arg (Printf.sprintf "Net.add_host: duplicate address %S" addr);
  Hashtbl.replace t.handlers addr handler

let set_link t a b ~latency_ms ~bandwidth_bpms =
  Hashtbl.replace t.links (link_key a b) (latency_ms, bandwidth_bpms)

let on_send t f = t.observer <- Some f

let observe t ~src ~dst ~category ~size ~attempt =
  match t.observer with
  | None -> ()
  | Some f -> f ~now:(Sim.now t.sim) ~src ~dst ~category ~size ~attempt

let partition t a b = Hashtbl.replace t.partitions (link_key a b) ()
let heal t a b = Hashtbl.remove t.partitions (link_key a b)

let link_params t a b =
  match Hashtbl.find_opt t.links (link_key a b) with
  | Some p -> p
  | None -> (t.default_latency, t.default_bandwidth)

let partitioned t a b = Hashtbl.mem t.partitions (link_key a b)

(* One transmission attempt is lost when the pair is partitioned or the
   coin says so. *)
let attempt_lost t ~src ~dst =
  partitioned t src dst
  || (t.drop_rate > 0. && Splitmix.float t.rng < t.drop_rate)

let transfer_delay t ~src ~dst ~size =
  let latency, bandwidth = link_params t src dst in
  let jitter = if t.jitter > 0. then Splitmix.float t.rng *. t.jitter else 0. in
  latency +. (float_of_int size /. bandwidth) +. jitter

let send t ~src ~dst ~category ~size payload =
  let handler =
    match Hashtbl.find_opt t.handlers dst with
    | Some h -> h
    | None -> invalid_arg (Printf.sprintf "Net.send: unknown host %S" dst)
  in
  match t.reliability with
  | None ->
      Stats.record t.stats category ~bytes:size;
      observe t ~src ~dst ~category ~size ~attempt:0;
      if attempt_lost t ~src ~dst then t.dropped <- t.dropped + 1
      else begin
        let delay = transfer_delay t ~src ~dst ~size in
        Sim.schedule t.sim ~delay (fun () ->
            (* A partition cut while the message was in flight kills it
               too — a cable does not care how far the packet got. *)
            if partitioned t src dst then t.dropped <- t.dropped + 1
            else begin
              Stats.record_latency t.stats category ~ms:delay;
              handler ~net:t ~src payload
            end)
      end
  | Some r ->
      let msg_id = t.next_msg_id in
      t.next_msg_id <- msg_id + 1;
      let sent_at = Sim.now t.sim in
      (* On (each) arrival: deliver exactly once, always (re-)ack. A
         partition cut mid-flight loses the attempt (the retransmission
         timer is already armed and will retry). *)
      let on_arrival () =
        if partitioned t src dst then t.dropped <- t.dropped + 1
        else begin
          if not (Hashtbl.mem t.delivered msg_id) then begin
            Hashtbl.add t.delivered msg_id ();
            Stats.record_latency t.stats category
              ~ms:(Sim.now t.sim -. sent_at);
            handler ~net:t ~src payload
          end;
          (* The ack travels back and may itself be lost. *)
          Stats.record t.stats Stats.Control ~bytes:r.ack_bytes;
          if attempt_lost t ~src:dst ~dst:src then t.dropped <- t.dropped + 1
          else begin
            let ack_delay =
              transfer_delay t ~src:dst ~dst:src ~size:r.ack_bytes
            in
            Sim.schedule t.sim ~delay:ack_delay (fun () ->
                if partitioned t dst src then t.dropped <- t.dropped + 1
                else Hashtbl.replace t.acked msg_id ())
          end
        end
      in
      let rec attempt n =
        Stats.record t.stats category ~bytes:size;
        observe t ~src ~dst ~category ~size ~attempt:n;
        if n > 0 then t.retransmitted <- t.retransmitted + 1;
        let arrived = not (attempt_lost t ~src ~dst) in
        if arrived then begin
          let delay = transfer_delay t ~src ~dst ~size in
          Sim.schedule t.sim ~delay on_arrival
        end
        else t.dropped <- t.dropped + 1;
        (* Retransmission timer: fires whether or not this attempt
           arrived; a lost ack also triggers a retry. *)
        Sim.schedule t.sim ~delay:r.retransmit_ms (fun () ->
            if not (Hashtbl.mem t.acked msg_id) then
              if n < r.max_retries then attempt (n + 1)
              else if not (Hashtbl.mem t.delivered msg_id) then
                t.lost <- t.lost + 1)
      in
      attempt 0

let run t = Sim.run t.sim
let now_ms t = Sim.now t.sim
let hosts t = Hashtbl.fold (fun a _ acc -> a :: acc) t.handlers []
let dropped_messages t = t.dropped
let retransmissions t = t.retransmitted
let lost_messages t = t.lost
