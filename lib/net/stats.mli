(** Per-category traffic accounting.

    The paper's headline for the optimistic protocol is that it "saves
    network resources": type representations and code travel only when
    needed. These counters are how experiment E5 observes that. *)

type category =
  | Object_msg  (** Hybrid envelopes carrying objects (Figure 3). *)
  | Tdesc_request
  | Tdesc_reply  (** Type descriptions (§5.2). *)
  | Asm_request
  | Asm_reply  (** Assemblies — downloaded code. *)
  | Invoke_request
  | Invoke_reply  (** Pass-by-reference remote invocations. *)
  | Gossip
      (** Cluster background traffic: membership, anti-entropy digests,
          replica pushes ([pti_cluster]). *)
  | Handle_ctl
      (** Type-handle negotiation control traffic: NAKs for unknown
          handles and the bind frames that renegotiate them. *)
  | Control  (** Everything else (acks, errors). *)

val all_categories : category list
val category_name : category -> string

val index : category -> int
(** Stable small-integer code (position in {!all_categories}) — the
    one-byte category tag the stream transports put on each frame. *)

val of_index : int -> category
(** Inverse of {!index}. @raise Invalid_argument out of range. *)

type t

val create : ?metrics:Pti_obs.Metrics.t -> unit -> t
(** When [metrics] is given, delivery latencies feed
    [net.latency_ms.<category>] histograms and per-category byte/message
    totals are exported as [net.bytes.<category>] /
    [net.messages.<category>] gauges (snapshot-time callbacks), so the
    network shares one registry with the peers that use it. *)

val record : t -> category -> bytes:int -> unit
val bytes : t -> category -> int
val messages : t -> category -> int
val total_bytes : t -> int
val total_messages : t -> int
val reset : t -> unit

val merge : t -> t -> t
(** Sum of two accountings (fresh; latency samples are concatenated, RTT
    estimates of a peer both sides observed are averaged). *)

(** {1 Delivery latencies} *)

val record_latency : t -> category -> ms:float -> unit
(** Called by the network when a message is first delivered: simulated
    time between the original send and the arrival. *)

val latency_samples : t -> category -> float list
(** Chronological. *)

val latency_percentile : t -> category -> float -> float option
(** [latency_percentile t c 0.5] is the median delivery latency of the
    category (nearest-rank); [None] when no sample exists. The argument
    must be in [\[0;1\]]. The sorted view is maintained incrementally:
    a query sorts only the samples recorded since the previous query
    and merges them into the sorted prefix, so interleaving recording
    with snapshots never re-sorts the whole history. *)

(** {1 Per-peer round-trip observations}

    A host's own view of how far away each peer it talks to is — fed by
    the layers that can pair a request with its reply (the cluster's
    gossip exchanges), read by the mirror selector to rank download
    candidates. Deliberately per-{!t}: give each node its own [Stats.t]
    and the knowledge stays local, the way it would on a real network. *)

val record_rtt : t -> peer:string -> ms:float -> unit
(** Fold one observed round-trip into the peer's exponentially weighted
    moving average (fresh peers start at the observed value). *)

val rtt : t -> peer:string -> float option
(** Current EWMA estimate; [None] before any observation. *)

val rtts : t -> (string * float) list
(** All estimates, sorted by peer address. *)

val pp : Format.formatter -> t -> unit
(** Aligned table of category / messages / bytes. *)
