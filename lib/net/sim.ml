(* Event labels classify what an event *is* so an external scheduler
   (the model checker) can distinguish message deliveries — which a real
   asynchronous network may reorder arbitrarily — from local actions and
   guard timers. See [Pti_mc.Explore] for the consumer. *)
type label =
  | Deliver of { src : string; dst : string; info : string }
  | Act of { owner : string; info : string }
  | Timer of { owner : string; info : string }
  | Internal

type event = {
  at : float;
  seq : int;
  label : label;
  thunk : unit -> unit;
  mutable cancelled : bool;
}

type info = { i_at : float; i_seq : int; i_label : label }

type t = {
  queue : event Pti_util.Pqueue.t;
  mutable clock : float;
  mutable next_seq : int;
}

let cmp a b =
  match Float.compare a.at b.at with 0 -> compare a.seq b.seq | c -> c

let create () =
  { queue = Pti_util.Pqueue.create ~cmp (); clock = 0.; next_seq = 0 }

let now t = t.clock

let push_event t ?(label = Internal) ~at thunk =
  let at = if at < t.clock then t.clock else at in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let e = { at; seq; label; thunk; cancelled = false } in
  Pti_util.Pqueue.push t.queue e;
  e

let schedule_at t ?label ~at thunk = ignore (push_event t ?label ~at thunk)

let schedule t ?label ~delay thunk =
  let delay = if delay < 0. then 0. else delay in
  schedule_at t ?label ~at:(t.clock +. delay) thunk

let schedule_cancellable t ?label ~delay thunk =
  let delay = if delay < 0. then 0. else delay in
  let e = push_event t ?label ~at:(t.clock +. delay) thunk in
  fun () -> e.cancelled <- true

(* Cancelled events are discarded without touching the clock. *)
let rec step t =
  match Pti_util.Pqueue.pop t.queue with
  | None -> false
  | Some e when e.cancelled -> step t
  | Some e ->
      t.clock <- e.at;
      e.thunk ();
      true

let run t = while step t do () done

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match Pti_util.Pqueue.peek t.queue with
    | Some e when e.cancelled -> ignore (Pti_util.Pqueue.pop t.queue)
    | Some e when e.at <= horizon -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  if t.clock < horizon then t.clock <- horizon

let pending t = Pti_util.Pqueue.length t.queue

let pending_events t =
  Pti_util.Pqueue.to_list_unordered t.queue
  |> List.filter (fun e -> not e.cancelled)
  |> List.sort cmp
  |> List.map (fun e -> { i_at = e.at; i_seq = e.seq; i_label = e.label })

(* Fire a chosen pending event out of heap order. The clock only moves
   forward ([max]) so firing a "late" event before an "early" one models
   the late one being delivered sooner, not time running backwards. *)
let fire t ~seq =
  match
    Pti_util.Pqueue.remove_where t.queue ~f:(fun e ->
        e.seq = seq && not e.cancelled)
  with
  | None -> false
  | Some e ->
      if e.at > t.clock then t.clock <- e.at;
      e.thunk ();
      true

let pp_label ppf = function
  | Deliver { src; dst; info } ->
      Format.fprintf ppf "deliver %s->%s %s" src dst info
  | Act { owner; info } -> Format.fprintf ppf "act[%s] %s" owner info
  | Timer { owner; info } -> Format.fprintf ppf "timer[%s] %s" owner info
  | Internal -> Format.pp_print_string ppf "internal"
