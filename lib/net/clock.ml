module Pqueue = Pti_util.Pqueue

type label =
  | Timer of { owner : string; info : string }
  | Act of { owner : string; info : string }

let to_sim_label = function
  | Timer { owner; info } -> Sim.Timer { owner; info }
  | Act { owner; info } -> Sim.Act { owner; info }

type entry = {
  at : float;
  seq : int;
  thunk : unit -> unit;
  mutable cancelled : bool;
}

type mono = {
  source : unit -> float;
  mutable last : float;  (* clamp: readings never go backwards *)
  mutable next_seq : int;
  timers : entry Pqueue.t;
}

type t = Sim_clock of Sim.t | Mono of mono

let of_sim sim = Sim_clock sim

let entry_cmp a b =
  match Float.compare a.at b.at with 0 -> compare a.seq b.seq | c -> c

let monotonic ~now () =
  (* Private epoch: readings are relative to creation, so only
     differences are meaningful and a huge absolute wall time never
     leaks into timeouts. *)
  let epoch = now () in
  Mono
    {
      source = (fun () -> now () -. epoch);
      last = 0.;
      next_seq = 0;
      timers = Pqueue.create ~cmp:entry_cmp ();
    }

let is_sim = function Sim_clock _ -> true | Mono _ -> false
let sim = function Sim_clock s -> Some s | Mono _ -> None

let now_ms = function
  | Sim_clock s -> Sim.now s
  | Mono m ->
      let v = m.source () in
      if v > m.last then m.last <- v;
      m.last

let schedule t ~label ~delay_ms f =
  match t with
  | Sim_clock s -> Sim.schedule s ~label:(to_sim_label label) ~delay:delay_ms f
  | Mono m ->
      let at = now_ms t +. Float.max 0. delay_ms in
      let seq = m.next_seq in
      m.next_seq <- seq + 1;
      Pqueue.push m.timers { at; seq; thunk = f; cancelled = false }

let schedule_cancellable t ~label ~delay_ms f =
  match t with
  | Sim_clock s ->
      Sim.schedule_cancellable s ~label:(to_sim_label label) ~delay:delay_ms f
  | Mono m ->
      let at = now_ms t +. Float.max 0. delay_ms in
      let seq = m.next_seq in
      m.next_seq <- seq + 1;
      let e = { at; seq; thunk = f; cancelled = false } in
      Pqueue.push m.timers e;
      fun () -> e.cancelled <- true

(* Cancelled entries are popped lazily; they cost one heap pop each, the
   same policy [Sim] uses. Re-reads the clock every iteration so a slow
   thunk that makes the next timer due fires it in the same tick. *)
let tick t =
  match t with
  | Sim_clock _ -> 0
  | Mono m ->
      let fired = ref 0 in
      let rec go () =
        match Pqueue.peek m.timers with
        | Some e when e.cancelled ->
            ignore (Pqueue.pop m.timers);
            go ()
        | Some e when e.at <= now_ms t ->
            ignore (Pqueue.pop m.timers);
            incr fired;
            e.thunk ();
            go ()
        | _ -> ()
      in
      go ();
      !fired

let next_due_ms t =
  match t with
  | Sim_clock _ -> None
  | Mono m ->
      let rec go () =
        match Pqueue.peek m.timers with
        | Some e when e.cancelled ->
            ignore (Pqueue.pop m.timers);
            go ()
        | Some e -> Some (Float.max 0. (e.at -. now_ms t))
        | None -> None
      in
      go ()

let pending = function
  | Sim_clock _ -> 0
  | Mono m ->
      List.length
        (List.filter
           (fun e -> not e.cancelled)
           (Pqueue.to_list_unordered m.timers))
