(** Pure ARQ bookkeeping, independent of the simulator clock.

    {!Net} implements stop-and-wait reliability over the sim; the socket
    transports implement reconnect-with-backoff over real file
    descriptors. Both share this module: the {!policy} record is the
    single vocabulary of reliability knobs ([Net.reliability] is an
    alias), {!backoff_ms} is the retry schedule, and {!Ledger} is the
    clock-free id/ack/delivery table the sim ARQ path keeps its state
    in. *)

type policy = {
  retransmit_ms : float;  (** Timer before an unacked send is retried. *)
  max_retries : int;  (** Attempts beyond the first before giving up. *)
  ack_bytes : int;  (** Wire size charged per acknowledgement. *)
}

val default : policy
(** 50 ms timer, 5 retries, 16-byte acks. *)

val backoff_ms : policy -> attempt:int -> float
(** Delay before retry [attempt] (0-based): exponential from
    [retransmit_ms], doubling per attempt, capped at 32x the base — the
    schedule the stream backends use between reconnect attempts.
    (The sim ARQ keeps its historical fixed interval; its timer wheel
    is free, so backoff would only slow deterministic runs down.) *)

val give_up : policy -> attempt:int -> bool
(** True once [attempt] exceeds [max_retries]. *)

(** Per-sender message ledger: issued ids, acks seen, deliveries made.
    Exactly-once delivery and duplicate-ack suppression reduce to table
    lookups here; no time involved. *)
module Ledger : sig
  type t

  val create : unit -> t

  val fresh_id : t -> int
  (** Monotonically increasing, starting at 0. *)

  val mark_acked : t -> int -> unit
  val is_acked : t -> int -> bool

  val mark_delivered : t -> int -> unit
  val is_delivered : t -> int -> bool

  val issued : t -> int
  (** How many ids {!fresh_id} has handed out. *)
end
