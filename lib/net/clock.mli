(** Abstract time source: the simulator's logical clock or a monotonic
    wall clock.

    Every layer above the network schedules guard timers (request
    timeouts, fetch backoff, renegotiation parks) and local actions
    (batch flushes, gossip ticks). On the simulated backend those must
    keep going through {!Sim.schedule} with exactly the same
    {!Sim.label}s — the model checker's schedules and fingerprints are
    keyed on them. On a socket backend there is no simulator, so the
    same calls land in a private timer wheel driven by a monotonic
    milliseconds source and fired from the poll loop via {!tick}.

    The [label] vocabulary mirrors the two schedulable {!Sim.label}
    constructors; a sim-backed clock forwards them verbatim so sim
    behavior is bit-identical to scheduling against [Sim] directly
    (pinned by a regression test). *)

type label =
  | Timer of { owner : string; info : string }
      (** A guard timer — maps to {!Sim.Timer} on the sim backend. *)
  | Act of { owner : string; info : string }
      (** A local action — maps to {!Sim.Act} on the sim backend. *)

type t

val of_sim : Sim.t -> t
(** A clock that is the simulator: [now_ms] is {!Sim.now} and
    scheduling delegates to {!Sim.schedule} with the equivalent label.
    {!tick} is a no-op (the sim loop fires its own events). *)

val monotonic : now:(unit -> float) -> unit -> t
(** A real-time clock over a milliseconds source (wall time). Readings
    are clamped to be non-decreasing, so a stepping system clock can
    never make an EWMA or a timeout go backwards. The caller supplies
    [now] (e.g. [Unix.gettimeofday () *. 1000.]) — keeping this module
    free of OS dependencies and testable with a fake source. *)

val is_sim : t -> bool
val sim : t -> Sim.t option

val now_ms : t -> float
(** Current time in milliseconds. Monotonic clocks report time since
    creation (a private epoch — only differences are meaningful). *)

val schedule : t -> label:label -> delay_ms:float -> (unit -> unit) -> unit
(** Run the thunk [delay_ms] from now (clamped to 0). On a monotonic
    clock the thunk fires from a later {!tick}. *)

val schedule_cancellable :
  t -> label:label -> delay_ms:float -> (unit -> unit) -> unit -> unit
(** Like {!schedule}, returning a cancel thunk (idempotent). *)

val tick : t -> int
(** Fire every due timer on a monotonic clock, in (deadline, schedule
    order); returns how many fired. Thunks may schedule further timers
    — a timer made due by the time taken inside the same tick fires
    before returning. No-op (0) on a sim clock. *)

val next_due_ms : t -> float option
(** Milliseconds until the earliest pending monotonic timer ([Some 0.]
    when overdue); [None] when no timer is pending or on a sim clock.
    The poll loop uses this to bound its select timeout. *)

val pending : t -> int
(** Pending (non-cancelled) monotonic timers; 0 on a sim clock. *)
