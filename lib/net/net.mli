(** The simulated network: addressed hosts, latency/bandwidth links,
    deterministic loss, optional reliable delivery, per-category
    accounting.

    Polymorphic in the payload so the middleware layers its own message
    type on top; the network charges each message by the byte [size] the
    sender declares (computed from real wire renderings upstream).

    {1 Reliability}

    With {!reliability} configured, every send is acknowledged and
    retransmitted on a timer until acked or out of retries — an abstract
    ARQ layer. Retransmissions are charged again in the {!Stats} (and acks
    as [Control] bytes), so loss shows up as traffic and latency, the way
    it would over a real transport. Duplicate deliveries caused by lost
    acks are suppressed (exactly-once delivery to handlers). Without it,
    a dropped message is simply gone — which stalls request/reply
    protocols, as it should. *)

type address = string

type reliability = {
  retransmit_ms : float;  (** Timer before an unacked send is retried. *)
  max_retries : int;  (** Attempts beyond the first before giving up. *)
  ack_bytes : int;  (** Wire size charged per acknowledgement. *)
}

val default_reliability : reliability
(** 50 ms timer, 5 retries, 16-byte acks. *)

type 'a t

val create : ?default_latency_ms:float -> ?default_bandwidth_bpms:float ->
  ?drop_rate:float -> ?jitter_ms:float -> ?reliability:reliability ->
  ?seed:int64 -> ?metrics:Pti_obs.Metrics.t -> unit -> 'a t
(** Defaults: 1.0 ms latency, 1000 bytes/ms (~1 MB/s) bandwidth, no drops,
    no jitter, no reliability layer, seed 42. [metrics] is forwarded to
    {!Stats.create}: latency histograms and traffic gauges land in the
    given registry under [net.*]. *)

val sim : 'a t -> Sim.t
val stats : 'a t -> Stats.t

val add_host : 'a t -> address ->
  handler:(net:'a t -> src:address -> 'a -> unit) -> unit
(** @raise Invalid_argument on a duplicate address. *)

val set_link : 'a t -> address -> address -> latency_ms:float ->
  bandwidth_bpms:float -> unit
(** Overrides the defaults for both directions of the pair. *)

val partition : 'a t -> address -> address -> unit
(** Drop all traffic between the pair until {!heal} — including messages
    (and acks) already in flight when the cut happens: delivery re-checks
    the partition table on arrival, so nothing crosses a severed link.
    Under reliability the senders keep retrying, so short partitions only
    delay delivery. *)

val heal : 'a t -> address -> address -> unit

val send : 'a t -> src:address -> dst:address -> category:Stats.category ->
  size:int -> 'a -> unit
(** Enqueue a message: records [size] bytes, applies latency + size/bandwidth
    (+ jitter), may drop. Delivery invokes the destination handler inside
    the simulation.
    @raise Invalid_argument for an unknown destination. *)

val on_send : 'a t ->
  (now:float -> src:address -> dst:address -> category:Stats.category ->
   size:int -> attempt:int -> unit) -> unit
(** Install an observer called for every transmission attempt (the
    {!Trace} module builds message logs from this). [attempt] is [0] for
    the first transmission and counts retransmissions up. Replaces any
    previous observer. *)

val run : 'a t -> unit
(** Run the simulation to quiescence. *)

val now_ms : 'a t -> float
val hosts : 'a t -> address list

val dropped_messages : 'a t -> int
(** Transmission attempts lost to drops/partitions (including attempts
    that were later retried successfully). *)

val retransmissions : 'a t -> int
(** Extra attempts made by the reliability layer. *)

val lost_messages : 'a t -> int
(** Messages abandoned after exhausting retries (always 0 without
    reliability — unreliable sends are counted in
    {!dropped_messages} only). *)
