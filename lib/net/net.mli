(** The simulated network: addressed hosts, latency/bandwidth links,
    deterministic loss, optional reliable delivery, per-category
    accounting.

    Polymorphic in the payload so the middleware layers its own message
    type on top; the network charges each message by the byte [size] the
    sender declares (computed from real wire renderings upstream).

    {1 Reliability}

    With {!reliability} configured, every send is acknowledged and
    retransmitted on a timer until acked or out of retries — an abstract
    ARQ layer. Retransmissions are charged again in the {!Stats} (and acks
    as [Control] bytes), so loss shows up as traffic and latency, the way
    it would over a real transport. Duplicate deliveries caused by lost
    acks are suppressed (exactly-once delivery to handlers). Without it,
    a dropped message is simply gone — which stalls request/reply
    protocols, as it should. *)

type address = string

type reliability = Arq.policy = {
  retransmit_ms : float;  (** Timer before an unacked send is retried. *)
  max_retries : int;  (** Attempts beyond the first before giving up. *)
  ack_bytes : int;  (** Wire size charged per acknowledgement. *)
}
(** Alias of {!Arq.policy}: the same knobs configure the sim ARQ here
    and reconnect-with-backoff in the socket transports. *)

val default_reliability : reliability
(** 50 ms timer, 5 retries, 16-byte acks. *)

type 'a fault_hooks = {
  fh_down : now:float -> src:address -> dst:address -> bool;
      (** Link severed at [now] (flap / partition window / crashed peer).
          Checked when an attempt launches {e and} again on arrival, so a
          window opening mid-flight kills the frame. *)
  fh_drop : now:float -> src:address -> dst:address -> bool;
      (** Extra per-attempt loss (burst windows). Counted in
          {!injected_drops} when it fires. *)
  fh_duplicates : now:float -> src:address -> dst:address -> int;
      (** Extra copies of the frame to transmit (each charged, lossed,
          delayed and corrupted independently). *)
  fh_delay : now:float -> src:address -> dst:address -> float;
      (** Extra milliseconds added to the transfer delay — reordering
          windows return large random values here. *)
  fh_corrupt : now:float -> src:address -> dst:address -> 'a -> 'a option;
      (** [Some p'] replaces the payload of this copy with a mangled
          [p']; [None] leaves it alone. Sampled per transmitted copy. *)
}
(** Per-link fault-injection hooks, evaluated lazily against [Sim.now] —
    installing a plan schedules no events, so {!run} still quiesces.
    Hooks draw their own randomness (from a seeded [Splitmix]); the
    network only asks. See [Pti_fault.Fault_plan] for the compiler. *)

val no_faults : 'a fault_hooks
(** Hooks that never fire — a base to override selectively. *)

type 'a t

val create : ?default_latency_ms:float -> ?default_bandwidth_bpms:float ->
  ?drop_rate:float -> ?jitter_ms:float -> ?reliability:reliability ->
  ?seed:int64 -> ?metrics:Pti_obs.Metrics.t -> unit -> 'a t
(** Defaults: 1.0 ms latency, 1000 bytes/ms (~1 MB/s) bandwidth, no drops,
    no jitter, no reliability layer, seed 42. [metrics] is forwarded to
    {!Stats.create}: latency histograms and traffic gauges land in the
    given registry under [net.*]. *)

val sim : 'a t -> Sim.t
val stats : 'a t -> Stats.t

val add_host : 'a t -> address ->
  handler:(net:'a t -> src:address -> 'a -> unit) -> unit
(** @raise Invalid_argument on a duplicate address. After
    {!remove_host} the address may be registered again (restart). *)

val remove_host : 'a t -> address -> unit
(** Unregister a host (crash). Handlers are resolved on arrival, so
    frames in flight to a removed host are dropped, not raised on;
    under reliability they go unacked and the sender keeps retrying,
    so a host re-added within the retry budget picks the delivery
    back up. Sending {e to} a removed-but-once-known address is a
    silent drop; only a never-registered destination raises. *)

val set_link : 'a t -> address -> address -> latency_ms:float ->
  bandwidth_bpms:float -> unit
(** Overrides the defaults for both directions of the pair. *)

val partition : 'a t -> address -> address -> unit
(** Drop all traffic between the pair until {!heal} — including messages
    (and acks) already in flight when the cut happens: delivery re-checks
    the partition table on arrival, so nothing crosses a severed link.
    Under reliability the senders keep retrying, so short partitions only
    delay delivery. *)

val heal : 'a t -> address -> address -> unit

val set_fault_hooks : 'a t -> 'a fault_hooks option -> unit
(** Install (or clear) the fault-injection hooks. *)

val set_integrity : 'a t -> ('a -> bool) option -> unit
(** Install a frame-integrity predicate — the abstract link-layer
    checksum. A frame failing it is discarded on arrival (counted in
    {!integrity_drops}) before the handler sees it; under reliability
    the discard suppresses the ack, so the sender retransmits and a
    later clean copy still gets through. *)

val send : 'a t -> ?info:string -> src:address -> dst:address ->
  category:Stats.category -> size:int -> 'a -> unit
(** Enqueue a message: records [size] bytes, applies latency + size/bandwidth
    (+ jitter), may drop. Delivery invokes the destination handler inside
    the simulation. [info] (default: the category name) describes the
    payload in the delivery event's {!Sim.label} so an exploration
    strategy can tell concurrently pending messages apart.
    @raise Invalid_argument for an unknown destination. *)

val on_send : 'a t ->
  (now:float -> src:address -> dst:address -> category:Stats.category ->
   size:int -> attempt:int -> unit) -> unit
(** Install an observer called for every transmission attempt (the
    {!Trace} module builds message logs from this). [attempt] is [0] for
    the first transmission and counts retransmissions up. Replaces any
    previous observer. *)

val run : 'a t -> unit
(** Run the simulation to quiescence. *)

val now_ms : 'a t -> float

val hosts : 'a t -> address list
(** Registered (alive) addresses, sorted — deterministic regardless of
    registration order. *)

(** {1 Scheduler hook}

    The model checker ([pti_mc]) replaces the simulator's FIFO event loop
    with an external strategy: read the {!enabled} set, pick an event,
    {!fire} it, repeat. {!run} remains the "always pick the earliest"
    strategy. *)

val enabled : 'a t -> Sim.info list
(** Pending simulator events (deliveries, actions, timers), sorted by
    [(time, seq)]. See {!Sim.pending_events}. *)

val fire : 'a t -> seq:int -> bool
(** Fire one enabled event out of order; clock only moves forward. See
    {!Sim.fire}. *)

val dropped_messages : 'a t -> int
(** Transmission attempts lost to drops/partitions (including attempts
    that were later retried successfully). *)

val retransmissions : 'a t -> int
(** Extra attempts made by the reliability layer. *)

val lost_messages : 'a t -> int
(** Messages abandoned after exhausting retries (always 0 without
    reliability — unreliable sends are counted in
    {!dropped_messages} only). *)

val lost_for : 'a t -> Stats.category -> int
(** {!lost_messages} restricted to one traffic category — lets a
    harness attribute abandoned messages (e.g. lost object envelopes
    vs lost subprotocol requests). *)

val injected_drops : 'a t -> int
(** Attempts lost to [fh_drop] windows (excludes ambient [drop_rate]
    losses and severed links). *)

val injected_duplicates : 'a t -> int
(** Extra frame copies created by [fh_duplicates]. *)

val corrupted_frames : 'a t -> int
(** Transmitted copies whose payload was replaced by [fh_corrupt]. *)

val integrity_drops : 'a t -> int
(** Frames discarded on arrival by the {!set_integrity} predicate. *)
