open Pti_conformance

let run ?(config = Config.strict) ?(near_distance = 2)
    ?(rule_set = Rule_set.default) sources =
  let ctx = Rules.make_ctx ~config ~near_distance sources in
  let diags =
    List.concat_map
      (fun (r : Rules.rule) ->
        if not (Rule_set.enabled rule_set r) then []
        else
          let ds = r.Rules.check ctx in
          match Rule_set.severity_for rule_set r with
          | None -> ds
          | Some sev ->
              List.map (fun d -> { d with Diagnostic.severity = sev }) ds)
      Rules.all
  in
  List.sort_uniq Diagnostic.compare diags
