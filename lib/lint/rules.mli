(** The lint rules: static detectors for interoperability hazards that the
    paper's deliberately permissive conformance rules (§4) would otherwise
    only surface at runtime — or worse, silently tolerate.

    Each rule reuses the conformance checker's own machinery
    ({!Pti_conformance.Checker.viable_methods}, [check_ty], the name
    rule), so a hazard flagged here is exactly a situation where the
    runtime binder's behavior is arbitrary, fragile or undeliverable.

    {2 Rule catalogue}

    - [PTI001] [ambiguous-method-binding] (error, rule iv) — two or more
      methods of one type conform to the same interest signature; the
      binder picks by policy ([First_match] by default), i.e. arbitrarily.
    - [PTI002] [permutation-ambiguity] (warning, rule iv) — a method or
      constructor has two parameters of mutually conformant types, so
      [find_permutation] may legally swap a caller's arguments.
    - [PTI003] [case-collision] (error/warning/info, rule i) — identifiers
      that differ only in case: the lowered name rule conflates them
      ([Price]/[price] alias); colliding qualified type names are an
      error (the registry and resolvers key case-insensitively).
    - [PTI004] [name-near-miss] (warning, rule i) — names within
      Levenshtein distance [near] of each other but above the active
      threshold; they flip from distinct to aliased when [--distance]
      is raised.
    - [PTI005] [supertype-cycle] (error, rule iii) — the declared
      supertype/interface graph contains a cycle (including
      self-inheritance); description resolution can never bottom out.
    - [PTI006] [unresolved-type] (error, §5.2) — a field, parameter,
      return, supertype or interface references a type with no available
      description: undeliverable via the envelope.
    - [PTI007] [constructor-rule] (warning, rule v) — a pair of types
      conforms on every aspect except constructors, so objects bind but
      can never be instantiated through the mapping.
    - [PTI008] [shadowed-field] (warning, rule ii) — a field re-declares a
      supertype field; descriptions are flat, so the supertype copy is
      unreachable.
    - [PTI009] [protocol-hazard] (warning; verdict flips are errors,
      rule iv + §5) — the conformance probe is order-sensitive for a
      conforming pair: reversing the actual type's method declarations
      changes which method a signature binds to (or the verdict itself),
      so two repository mirrors that serialise the description
      differently hand out different proxies for the same GUID. *)

open Pti_conformance

type source = {
  src_file : string;  (** Display name, used in diagnostics. *)
  src_assembly : Pti_cts.Assembly.t;
  src_locate : Diagnostic.subject -> Diagnostic.loc option;
      (** Best-effort source positions (see {!Pti_idl.Srcmap}). *)
}

val no_locations : Diagnostic.subject -> Diagnostic.loc option
(** Locator for inputs without source positions: always [None]. *)

type ctx
(** Everything a rule sees: the active {!Config}, checkers over the
    combined description table, and every type of every input. *)

val make_ctx : config:Config.t -> near_distance:int -> source list -> ctx

type rule = {
  code : string;  (** Stable, e.g. ["PTI001"]. *)
  name : string;
  default_severity : Diagnostic.severity;
      (** Headline severity; some rules grade sub-cases lower. *)
  doc : string;  (** One line: what it catches and why it matters. *)
  paper : string;  (** The paper section the rule guards. *)
  check : ctx -> Diagnostic.t list;
}

val all : rule list
(** In code order. *)

val find : string -> rule option
(** By code, case-insensitive. *)
