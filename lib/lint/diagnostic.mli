(** Lint diagnostics: one finding of the static interop-hazard analyzer.

    Every diagnostic carries a stable rule code ([PTI001]..), a severity,
    the file it was found in, an optional source location (when the IDL
    front end recorded one), and the program element it is about. *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string
val severity_of_string : string -> severity option
val severity_rank : severity -> int
(** [Error] ranks highest (2), [Info] lowest (0). *)

type loc = { line : int; col : int }

type subject =
  | Type of string  (** Qualified type name. *)
  | Field of string * string  (** Type, field name. *)
  | Method of string * string * int  (** Type, method name, arity. *)
  | Ctor of string * int  (** Type, arity. *)

val subject_type : subject -> string
(** The qualified name of the type the subject belongs to. *)

val subject_member : subject -> string option
(** ["field price"], ["method getName/0"], ["ctor/2"]; [None] for types. *)

type t = {
  code : string;  (** Stable rule code, e.g. ["PTI003"]. *)
  rule : string;  (** Rule name, e.g. ["case-collision"]. *)
  severity : severity;
  file : string;  (** Input file the subject was parsed from. *)
  loc : loc option;
  subject : subject;
  message : string;
}

val compare : t -> t -> int
(** Stable report order: file, then line (unlocated last), code, subject,
    message. *)

val pp : Format.formatter -> t -> unit
(** One line: [FILE:LINE: severity CODE: message  (rule)]. *)
