module Td = Pti_typedesc.Type_description
module Ty = Pti_cts.Ty
module Lev = Pti_util.Levenshtein
module Strutil = Pti_util.Strutil
open Pti_conformance

type source = {
  src_file : string;
  src_assembly : Pti_cts.Assembly.t;
  src_locate : Diagnostic.subject -> Diagnostic.loc option;
}

let no_locations _ = None

(* One declared type, paired with the input it came from so diagnostics
   can point back at the right file and line. *)
type entry = { e_src : source; e_td : Td.t }

type ctx = {
  cfg : Config.t;
  near : int;
  checker : Checker.t;
  noctor : Checker.t;  (* same config with rule (v) switched off *)
  resolve : Td.resolver;
  entries : entry list;
}

let make_ctx ~config ~near_distance sources =
  let entries =
    List.concat_map
      (fun s ->
        List.map
          (fun cd -> { e_src = s; e_td = Td.of_class cd })
          s.src_assembly.Pti_cts.Assembly.asm_classes)
      sources
  in
  let resolve = Td.table_resolver (List.map (fun e -> e.e_td) entries) in
  {
    cfg = config;
    near = near_distance;
    checker = Checker.create ~config ~resolver:resolve ();
    noctor =
      Checker.create
        ~config:{ config with Config.check_ctors = false }
        ~resolver:resolve ();
    resolve;
    entries;
  }

type rule = {
  code : string;
  name : string;
  default_severity : Diagnostic.severity;
  doc : string;
  paper : string;
  check : ctx -> Diagnostic.t list;
}

let diag ~code ~rule severity e subject message =
  {
    Diagnostic.code;
    rule;
    severity;
    file = e.e_src.src_file;
    loc = e.e_src.src_locate subject;
    subject;
    message;
  }

let qname e = Td.qualified_name e.e_td
let lc = String.lowercase_ascii

(* The name the active name rule actually compares: simple unless the
   configuration compares namespaces too. *)
let rule_name ctx e =
  if ctx.cfg.Config.compare_namespaces then qname e else e.e_td.Td.ty_name

let names_conform ctx a b =
  Checker.names_conform ctx.checker ~interest_name:(qname a) (qname b)

(* Unordered pairs (i < j), so a symmetric hazard is reported once. *)
let iter_pairs xs f =
  let arr = Array.of_list xs in
  for i = 0 to Array.length arr - 1 do
    for j = i + 1 to Array.length arr - 1 do
      f arr.(i) arr.(j)
    done
  done

(* ------------------------------------------------------------------ *)
(* PTI001: ambiguous method binding (rule iv).                         *)

let check_ambiguous ctx =
  let out = ref [] in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun t_e ->
      List.iter
        (fun a_e ->
          if names_conform ctx t_e a_e then
            List.iter
              (fun (m : Td.method_desc) ->
                match
                  Checker.viable_methods ctx.checker ~actual:a_e.e_td
                    ~interest:m
                with
                | ([ _ ] | []) -> ()
                | viable ->
                    let cands =
                      List.sort String.compare
                        (List.map
                           (fun ((m' : Td.method_desc), _) ->
                             Printf.sprintf "%s/%d" m'.Td.md_name
                               (Td.method_arity m'))
                           viable)
                    in
                    let key =
                      lc (qname a_e) ^ "|" ^ String.concat "," cands
                    in
                    if not (Hashtbl.mem seen key) then begin
                      Hashtbl.add seen key ();
                      let (first, _) = List.hd viable in
                      let subject =
                        Diagnostic.Method
                          (qname a_e, first.Td.md_name,
                           Td.method_arity first)
                      in
                      out :=
                        diag ~code:"PTI001" ~rule:"ambiguous-method-binding"
                          Diagnostic.Error a_e subject
                          (Printf.sprintf
                             "methods %s of %s all conform to the interest \
                              signature %s of %s (rule iv); which one the \
                              binder picks depends on the ambiguity policy, \
                              not the program"
                             (String.concat ", " cands) (qname a_e)
                             (Td.signature m) (qname t_e))
                        :: !out
                    end)
              t_e.e_td.Td.ty_methods)
        ctx.entries)
    ctx.entries;
  !out

(* ------------------------------------------------------------------ *)
(* PTI002: legally permutable arguments (rule iv).                     *)

let check_permutable ctx =
  if not ctx.cfg.Config.consider_permutations then []
  else
    let mutual a b =
      Checker.check_ty ctx.checker ~actual:a ~interest:b
      && Checker.check_ty ctx.checker ~actual:b ~interest:a
    in
    let swappable (params : Td.param_desc list) =
      let arr = Array.of_list params in
      let pairs = ref [] in
      for i = 0 to Array.length arr - 1 do
        for j = i + 1 to Array.length arr - 1 do
          if mutual arr.(i).Td.pd_ty arr.(j).Td.pd_ty then
            pairs := (arr.(i), arr.(j)) :: !pairs
        done
      done;
      List.rev !pairs
    in
    let render pairs =
      String.concat ", "
        (List.map
           (fun ((a : Td.param_desc), (b : Td.param_desc)) ->
             Printf.sprintf "'%s'/'%s'" a.Td.pd_name b.Td.pd_name)
           pairs)
    in
    List.concat_map
      (fun e ->
        let q = qname e in
        let on_methods =
          List.filter_map
            (fun (m : Td.method_desc) ->
              if List.length m.Td.md_params < 2 then None
              else
                match swappable m.Td.md_params with
                | [] -> None
                | pairs ->
                    let subject =
                      Diagnostic.Method (q, m.Td.md_name, Td.method_arity m)
                    in
                    Some
                      (diag ~code:"PTI002" ~rule:"permutation-ambiguity"
                         Diagnostic.Warning e subject
                         (Printf.sprintf
                            "arguments of %s can be legally permuted \
                             (rule iv): parameter pairs %s have mutually \
                             conformant types, so a caller's arguments may \
                             bind in either order"
                            (Td.signature m) (render pairs))))
            e.e_td.Td.ty_methods
        in
        let on_ctors =
          List.filter_map
            (fun (c : Td.ctor_desc) ->
              if List.length c.Td.cd_params < 2 then None
              else
                match swappable c.Td.cd_params with
                | [] -> None
                | pairs ->
                    let arity = List.length c.Td.cd_params in
                    let subject = Diagnostic.Ctor (q, arity) in
                    Some
                      (diag ~code:"PTI002" ~rule:"permutation-ambiguity"
                         Diagnostic.Warning e subject
                         (Printf.sprintf
                            "arguments of the %d-argument constructor of %s \
                             can be legally permuted (rule v): parameter \
                             pairs %s have mutually conformant types"
                            arity q (render pairs))))
            e.e_td.Td.ty_ctors
        in
        on_methods @ on_ctors)
      ctx.entries

(* ------------------------------------------------------------------ *)
(* PTI003: identifiers that differ only in case (rule i).              *)

let check_case_collisions ctx =
  let out = ref [] in
  (* (a) Distinct declarations whose qualified names are case-insensitively
     equal. GUIDs are derived from the lowered name, so such types share a
     GUID and every case-insensitive lookup (registry, resolver) conflates
     them: an error. Re-loading the very same description twice is not. *)
  let groups = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let k = lc (qname e) in
      Hashtbl.replace groups k
        (e :: (try Hashtbl.find groups k with Not_found -> [])))
    ctx.entries;
  Hashtbl.iter
    (fun _ es ->
      match List.rev es with
      | first :: (_ :: _ as rest)
        when List.exists
               (fun e ->
                 qname e <> qname first
                 || Td.fingerprint e.e_td <> Td.fingerprint first.e_td)
               rest ->
          let spellings =
            List.sort_uniq String.compare (List.map qname (first :: rest))
          in
          let where =
            List.sort_uniq String.compare
              (List.map (fun e -> e.e_src.src_file) (first :: rest))
          in
          out :=
            diag ~code:"PTI003" ~rule:"case-collision" Diagnostic.Error first
              (Diagnostic.Type (qname first))
              (Printf.sprintf
                 "%d declarations named %s up to case (in %s): the lowered \
                  name rule (i) and GUID derivation conflate them, so \
                  lookups resolve to an arbitrary one"
                 (List.length (first :: rest))
                 (String.concat ", " spellings)
                 (String.concat ", " where))
            :: !out
      | _ -> ())
    groups;
  List.iter
    (fun e ->
      let q = qname e in
      (* (b) Methods of one type whose names differ only in case. Validation
         forbids same-arity duplicates, so these have different arities —
         still risky: the name rule sees one overloaded name. *)
      let mgroups = Hashtbl.create 8 in
      List.iter
        (fun (m : Td.method_desc) ->
          let k = lc m.Td.md_name in
          Hashtbl.replace mgroups k
            (m :: (try Hashtbl.find mgroups k with Not_found -> [])))
        e.e_td.Td.ty_methods;
      Hashtbl.iter
        (fun _ ms ->
          let spellings =
            List.sort_uniq String.compare
              (List.map (fun (m : Td.method_desc) -> m.Td.md_name) ms)
          in
          match (List.rev ms, spellings) with
          | (first :: _, _ :: _ :: _) ->
              out :=
                diag ~code:"PTI003" ~rule:"case-collision" Diagnostic.Warning
                  e
                  (Diagnostic.Method
                     (q, first.Td.md_name, Td.method_arity first))
                  (Printf.sprintf
                     "methods %s of %s differ only in case; the name rule \
                      (i) treats them as one overloaded name"
                     (String.concat ", "
                        (List.map
                           (fun (m : Td.method_desc) ->
                             Printf.sprintf "%s/%d" m.Td.md_name
                               (Td.method_arity m))
                           (List.rev ms)))
                     q)
                :: !out
          | _ -> ())
        mgroups;
      (* (c) A field and a method sharing a name up to case: merely
         confusing, the aspects never compare them — informational. *)
      List.iter
        (fun (f : Td.field_desc) ->
          match
            List.find_opt
              (fun (m : Td.method_desc) ->
                Strutil.equal_ci m.Td.md_name f.Td.fd_name)
              e.e_td.Td.ty_methods
          with
          | Some m ->
              out :=
                diag ~code:"PTI003" ~rule:"case-collision" Diagnostic.Info e
                  (Diagnostic.Field (q, f.Td.fd_name))
                  (Printf.sprintf
                     "field %s and method %s/%d of %s share a name up to \
                      case; descriptions and diagnostics conflate them"
                     f.Td.fd_name m.Td.md_name (Td.method_arity m) q)
                :: !out
          | None -> ())
        e.e_td.Td.ty_fields)
    ctx.entries;
  !out

(* ------------------------------------------------------------------ *)
(* PTI004: near-miss names (rule i, threshold sensitivity).            *)

let check_near_misses ctx =
  let lo = ctx.cfg.Config.name_distance in
  let hi = ctx.near in
  if hi <= lo then []
  else
    let near a b =
      let d = Lev.distance_ci a b in
      if d > lo && d <= hi then Some d else None
    in
    let out = ref [] in
    (* Type names across all inputs, compared the way the name rule
       compares them (simple names unless namespaces count). *)
    iter_pairs ctx.entries (fun a b ->
        match near (rule_name ctx a) (rule_name ctx b) with
        | Some d ->
            out :=
              diag ~code:"PTI004" ~rule:"name-near-miss" Diagnostic.Warning a
                (Diagnostic.Type (qname a))
                (Printf.sprintf
                   "type names %s and %s (%s) are within edit distance %d; \
                    raising the name-rule threshold past %d would make them \
                    conform"
                   (qname a) (qname b) b.e_src.src_file d (d - 1))
              :: !out
        | None -> ());
    (* Members within one type: a same-arity method pair or a field pair
       this close is almost always a typo. *)
    List.iter
      (fun e ->
        let q = qname e in
        iter_pairs e.e_td.Td.ty_methods
          (fun (m1 : Td.method_desc) (m2 : Td.method_desc) ->
            if Td.method_arity m1 = Td.method_arity m2 then
              match near m1.Td.md_name m2.Td.md_name with
              | Some d ->
                  out :=
                    diag ~code:"PTI004" ~rule:"name-near-miss"
                      Diagnostic.Warning e
                      (Diagnostic.Method (q, m1.Td.md_name, Td.method_arity m1))
                      (Printf.sprintf
                         "methods %s/%d and %s/%d of %s are within edit \
                          distance %d of each other — likely a typo, and \
                          ambiguous under a relaxed name rule"
                         m1.Td.md_name (Td.method_arity m1) m2.Td.md_name
                         (Td.method_arity m2) q d)
                    :: !out
              | None -> ());
        iter_pairs e.e_td.Td.ty_fields
          (fun (f1 : Td.field_desc) (f2 : Td.field_desc) ->
            match near f1.Td.fd_name f2.Td.fd_name with
            | Some d ->
                out :=
                  diag ~code:"PTI004" ~rule:"name-near-miss"
                    Diagnostic.Warning e
                    (Diagnostic.Field (q, f1.Td.fd_name))
                    (Printf.sprintf
                       "fields %s and %s of %s are within edit distance %d \
                        of each other — likely a typo, and ambiguous under \
                        a relaxed name rule"
                       f1.Td.fd_name f2.Td.fd_name q d)
                  :: !out
            | None -> ()))
      ctx.entries;
    !out

(* ------------------------------------------------------------------ *)
(* PTI005: cycles in the declared supertype/interface graph.           *)

let check_cycles ctx =
  let display = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace display (lc (qname e)) e) ctx.entries;
  let parents name =
    match ctx.resolve name with
    | None -> []
    | Some td ->
        (match td.Td.ty_super with Some s -> [ s ] | None -> [])
        @ td.Td.ty_interfaces
  in
  let reported = Hashtbl.create 4 in
  let out = ref [] in
  List.iter
    (fun e ->
      let start = lc (qname e) in
      (* Depth-first search for a path from [start] back to itself through
         declared supertype and interface edges. [path] holds lowered
         names, most recent first, and doubles as the visited set. *)
      let rec dfs path cur =
        List.iter
          (fun p ->
            let pl = lc p in
            if pl = start then begin
              let cycle = List.rev (pl :: path) in
              let key =
                String.concat ">" (List.sort_uniq String.compare cycle)
              in
              if not (Hashtbl.mem reported key) then begin
                Hashtbl.add reported key ();
                let show n =
                  match Hashtbl.find_opt display n with
                  | Some e' -> qname e'
                  | None -> n
                in
                out :=
                  diag ~code:"PTI005" ~rule:"supertype-cycle" Diagnostic.Error
                    e
                    (Diagnostic.Type (qname e))
                    (Printf.sprintf
                       "inheritance cycle %s: rule (iii) recursion through \
                        supertypes can never bottom out"
                       (String.concat " -> " (List.map show cycle)))
                  :: !out
              end
            end
            else if not (List.mem pl path) then
              if Hashtbl.mem display pl then dfs (pl :: path) pl)
          (parents cur)
      in
      dfs [ start ] start)
    ctx.entries;
  !out

(* ------------------------------------------------------------------ *)
(* PTI006: references to types with no available description.          *)

let rec base_named ty =
  match ty with
  | Ty.Named n -> Some n
  | Ty.Array e -> base_named e
  | _ -> None

let check_unresolved ctx =
  let out = ref [] in
  List.iter
    (fun e ->
      let q = qname e in
      let seen = Hashtbl.create 8 in
      let check_ref subject context ty =
        match base_named ty with
        | None -> ()
        | Some n ->
            if ctx.resolve n = None then begin
              let key = lc n ^ "|" ^ context in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                out :=
                  diag ~code:"PTI006" ~rule:"unresolved-type" Diagnostic.Error
                    e subject
                    (Printf.sprintf
                       "%s of %s references type %s, but no description for \
                        it is available: conformance checking and delivery \
                        would fail to resolve it"
                       context q n)
                  :: !out
              end
            end
      in
      let tysub = Diagnostic.Type q in
      (match e.e_td.Td.ty_super with
      | Some s -> check_ref tysub "the supertype" (Ty.Named s)
      | None -> ());
      List.iter
        (fun i -> check_ref tysub ("implemented interface " ^ i) (Ty.Named i))
        e.e_td.Td.ty_interfaces;
      List.iter
        (fun (f : Td.field_desc) ->
          check_ref
            (Diagnostic.Field (q, f.Td.fd_name))
            ("field " ^ f.Td.fd_name) f.Td.fd_ty)
        e.e_td.Td.ty_fields;
      List.iter
        (fun (m : Td.method_desc) ->
          let sub = Diagnostic.Method (q, m.Td.md_name, Td.method_arity m) in
          let label = Printf.sprintf "method %s" (Td.signature m) in
          List.iter
            (fun (p : Td.param_desc) -> check_ref sub label p.Td.pd_ty)
            m.Td.md_params;
          check_ref sub label m.Td.md_return)
        e.e_td.Td.ty_methods;
      List.iter
        (fun (c : Td.ctor_desc) ->
          let arity = List.length c.Td.cd_params in
          let sub = Diagnostic.Ctor (q, arity) in
          let label = Printf.sprintf "the %d-argument constructor" arity in
          List.iter
            (fun (p : Td.param_desc) -> check_ref sub label p.Td.pd_ty)
            c.Td.cd_params)
        e.e_td.Td.ty_ctors)
    ctx.entries;
  !out

(* ------------------------------------------------------------------ *)
(* PTI007: conformant but for the constructor rule (rule v).           *)

let check_ctor_rule ctx =
  if not ctx.cfg.Config.check_ctors then []
  else
    let out = ref [] in
    List.iter
      (fun t_e ->
        List.iter
          (fun a_e ->
            if
              (not (Td.equals t_e.e_td a_e.e_td))
              && names_conform ctx t_e a_e
            then
              match
                Checker.check ctx.checker ~actual:a_e.e_td ~interest:t_e.e_td
              with
              | Checker.Conformant _ -> ()
              | Checker.Not_conformant fs ->
                  if
                    Checker.verdict_ok
                      (Checker.check ctx.noctor ~actual:a_e.e_td
                         ~interest:t_e.e_td)
                  then begin
                    let why =
                      match
                        List.find_opt
                          (fun (f : Checker.failure) ->
                            Strutil.starts_with ~prefix:"ctor"
                              (lc f.Checker.context)
                            || Strutil.starts_with ~prefix:"rule v"
                                 (lc f.Checker.message))
                          fs
                      with
                      | Some f -> f.Checker.message
                      | None -> (
                          match fs with
                          | f :: _ -> f.Checker.message
                          | [] -> "no conformant constructor")
                    in
                    out :=
                      diag ~code:"PTI007" ~rule:"constructor-rule"
                        Diagnostic.Warning a_e
                        (Diagnostic.Type (qname a_e))
                        (Printf.sprintf
                           "%s conforms to %s on every aspect except the \
                            constructor rule (v): %s — bound objects can \
                            never be instantiated through the mapping"
                           (qname a_e) (qname t_e) why)
                      :: !out
                  end)
          ctx.entries)
      ctx.entries;
    !out

(* ------------------------------------------------------------------ *)
(* PTI008: fields shadowing a supertype field (rule ii).               *)

let check_shadowed_fields ctx =
  let ancestors e =
    (* Walk the declared superclass chain; cycles are PTI005's problem,
       guard against them here. *)
    let seen = Hashtbl.create 4 in
    Hashtbl.add seen (lc (qname e)) ();
    let rec go acc td =
      match td.Td.ty_super with
      | None -> List.rev acc
      | Some s -> (
          let sl = lc s in
          if Hashtbl.mem seen sl then List.rev acc
          else begin
            Hashtbl.add seen sl ();
            match ctx.resolve s with
            | None -> List.rev acc
            | Some std -> go (std :: acc) std
          end)
    in
    go [] e.e_td
  in
  List.concat_map
    (fun e ->
      let supers = ancestors e in
      List.filter_map
        (fun (f : Td.field_desc) ->
          let hit =
            List.find_map
              (fun (a : Td.t) ->
                List.find_map
                  (fun (g : Td.field_desc) ->
                    if Strutil.equal_ci g.Td.fd_name f.Td.fd_name then
                      Some (a, g)
                    else None)
                  a.Td.ty_fields)
              supers
          in
          match hit with
          | None -> None
          | Some (a, g) ->
              Some
                (diag ~code:"PTI008" ~rule:"shadowed-field" Diagnostic.Warning
                   e
                   (Diagnostic.Field (qname e, f.Td.fd_name))
                   (Printf.sprintf
                      "field %s of %s shadows field %s of supertype %s: the \
                       field rule (ii) matches the subtype's copy, leaving \
                       the supertype's unreachable through descriptions"
                      f.Td.fd_name (qname e) g.Td.fd_name
                      (Td.qualified_name a))))
        e.e_td.Td.ty_fields)
    ctx.entries

(* ------------------------------------------------------------------ *)
(* PTI009: order-sensitive conformance probe (protocol hazard).        *)

(* The conformance probe and the binder walk methods in declaration
   order ([First_match], and [Best_score]'s tie-break, both keep the
   earlier candidate). If reversing the actual type's method list flips
   the verdict or changes which method a signature binds to, then what
   the assembly answers to "do you conform?" depends on how its
   description happened to be serialised — a protocol hazard: replicated
   repositories and verdict caches treat conformance as a type-level
   fact, but two mirrors serialising methods differently would hand out
   different proxies for the same GUID. *)
let check_order_sensitivity ctx =
  (* Fresh checkers per probe: the permuted description keeps its GUID,
     so a shared verdict cache would short-circuit the reversed check. *)
  let probe ~actual ~interest =
    Checker.check
      (Checker.create ~config:ctx.cfg ~resolver:ctx.resolve ())
      ~actual ~interest
  in
  let binding_key (mm : Mapping.method_map) =
    (lc mm.Mapping.mm_interest_name, mm.Mapping.mm_arity)
  in
  let same_binding (a : Mapping.method_map) (b : Mapping.method_map) =
    Strutil.equal_ci a.Mapping.mm_actual_name b.Mapping.mm_actual_name
    && a.Mapping.mm_perm = b.Mapping.mm_perm
  in
  let out = ref [] in
  List.iter
    (fun t_e ->
      List.iter
        (fun a_e ->
          if
            (not (Td.equals t_e.e_td a_e.e_td))
            && names_conform ctx t_e a_e
            && List.length a_e.e_td.Td.ty_methods >= 2
          then begin
            let actual = a_e.e_td in
            let reversed =
              { actual with Td.ty_methods = List.rev actual.Td.ty_methods }
            in
            match
              ( probe ~actual ~interest:t_e.e_td,
                probe ~actual:reversed ~interest:t_e.e_td )
            with
            | Checker.Conformant m1, Checker.Conformant m2 ->
                let divergent =
                  List.filter_map
                    (fun mm ->
                      match
                        List.find_opt
                          (fun mm' -> binding_key mm' = binding_key mm)
                          m2.Mapping.methods
                      with
                      | Some mm' when not (same_binding mm mm') ->
                          Some (mm, mm')
                      | _ -> None)
                    m1.Mapping.methods
                in
                (match divergent with
                | [] -> ()
                | (mm, mm') :: _ ->
                    out :=
                      diag ~code:"PTI009" ~rule:"protocol-hazard"
                        Diagnostic.Warning a_e
                        (Diagnostic.Method
                           (qname a_e, mm.Mapping.mm_interest_name,
                            mm.Mapping.mm_arity))
                        (Printf.sprintf
                           "binding of %s/%d of %s against %s depends on \
                            method declaration order: %s as declared, %s \
                            with the methods reversed — mirrors serialising \
                            the description differently would hand out \
                            different proxies"
                           mm.Mapping.mm_interest_name mm.Mapping.mm_arity
                           (qname t_e) (qname a_e)
                           mm.Mapping.mm_actual_name mm'.Mapping.mm_actual_name)
                      :: !out)
            | v1, v2 when Checker.verdict_ok v1 <> Checker.verdict_ok v2 ->
                out :=
                  diag ~code:"PTI009" ~rule:"protocol-hazard" Diagnostic.Error
                    a_e
                    (Diagnostic.Type (qname a_e))
                    (Printf.sprintf
                       "conformance of %s to %s flips when %s's methods are \
                        declared in reverse order — the verdict is not a \
                        type-level fact"
                       (qname a_e) (qname t_e) (qname a_e))
                  :: !out
            | _ -> ()
          end)
        ctx.entries)
    ctx.entries;
  !out

(* ------------------------------------------------------------------ *)

let all =
  [
    {
      code = "PTI001";
      name = "ambiguous-method-binding";
      default_severity = Diagnostic.Error;
      doc =
        "two or more methods of a type conform to the same interest \
         signature, so the binder's choice is policy-dependent";
      paper = "§4.2 rule (iv)";
      check = check_ambiguous;
    };
    {
      code = "PTI002";
      name = "permutation-ambiguity";
      default_severity = Diagnostic.Warning;
      doc =
        "a method or constructor takes two mutually conformant parameter \
         types, so arguments may legally bind in either order";
      paper = "§4.2 rule (iv)";
      check = check_permutable;
    };
    {
      code = "PTI003";
      name = "case-collision";
      default_severity = Diagnostic.Error;
      doc =
        "identifiers differing only in case: the lowered name rule and \
         GUID derivation conflate them";
      paper = "§4.2 rule (i)";
      check = check_case_collisions;
    };
    {
      code = "PTI004";
      name = "name-near-miss";
      default_severity = Diagnostic.Warning;
      doc =
        "names within Levenshtein distance N of each other but above the \
         active threshold: typo-prone, and aliased once the rule is relaxed";
      paper = "§4.2 rule (i)";
      check = check_near_misses;
    };
    {
      code = "PTI005";
      name = "supertype-cycle";
      default_severity = Diagnostic.Error;
      doc =
        "the declared supertype/interface graph contains a cycle (or \
         self-inheritance), so rule (iii) recursion cannot terminate";
      paper = "§4.2 rule (iii)";
      check = check_cycles;
    };
    {
      code = "PTI006";
      name = "unresolved-type";
      default_severity = Diagnostic.Error;
      doc =
        "a supertype, interface, field, parameter or return references a \
         type with no available description";
      paper = "§5.2";
      check = check_unresolved;
    };
    {
      code = "PTI007";
      name = "constructor-rule";
      default_severity = Diagnostic.Warning;
      doc =
        "a pair of types conforms on every aspect except constructors: \
         objects bind but cannot be instantiated through the mapping";
      paper = "§4.2 rule (v)";
      check = check_ctor_rule;
    };
    {
      code = "PTI008";
      name = "shadowed-field";
      default_severity = Diagnostic.Warning;
      doc =
        "a field re-declares (up to case) a field of an ancestor; flat \
         descriptions make the supertype copy unreachable";
      paper = "§4.2 rule (ii)";
      check = check_shadowed_fields;
    };
    {
      code = "PTI009";
      name = "protocol-hazard";
      default_severity = Diagnostic.Warning;
      doc =
        "the conformance probe is order-sensitive for this pair: reversing \
         the actual type's method declarations changes the binding (or the \
         verdict), so replicated repositories can disagree";
      paper = "§4.2 rule (iv), §5";
      check = check_order_sensitivity;
    };
  ]

let find code =
  List.find_opt (fun r -> Strutil.equal_ci r.code code) all
