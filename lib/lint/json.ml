type t =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_string ?(pretty = true) v =
  let b = Buffer.create 256 in
  let pad n = if pretty then Buffer.add_string b (String.make n ' ') in
  let nl () = if pretty then Buffer.add_char b '\n' in
  let rec go indent = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Int i -> Buffer.add_string b (string_of_int i)
    | String s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List items ->
        Buffer.add_char b '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char b ',';
              nl ()
            end;
            pad (indent + 2);
            go (indent + 2) item)
          items;
        nl ();
        pad indent;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_char b '{';
        nl ();
        List.iteri
          (fun i (k, item) ->
            if i > 0 then begin
              Buffer.add_char b ',';
              nl ()
            end;
            pad (indent + 2);
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b (if pretty then "\": " else "\":");
            go (indent + 2) item)
          fields;
        nl ();
        pad indent;
        Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b
