type summary = { errors : int; warnings : int; infos : int }

let summarize diags =
  List.fold_left
    (fun s (d : Diagnostic.t) ->
      match d.Diagnostic.severity with
      | Diagnostic.Error -> { s with errors = s.errors + 1 }
      | Diagnostic.Warning -> { s with warnings = s.warnings + 1 }
      | Diagnostic.Info -> { s with infos = s.infos + 1 })
    { errors = 0; warnings = 0; infos = 0 }
    diags

let exit_code diags = if (summarize diags).errors > 0 then 1 else 0

let to_text diags =
  match diags with
  | [] -> "no interop hazards found\n"
  | _ ->
      let b = Buffer.create 256 in
      List.iter
        (fun d -> Buffer.add_string b (Format.asprintf "%a@." Diagnostic.pp d))
        diags;
      let s = summarize diags in
      Buffer.add_string b
        (Printf.sprintf "%d error(s), %d warning(s), %d info(s)\n" s.errors
           s.warnings s.infos);
      Buffer.contents b

let diag_json (d : Diagnostic.t) =
  let base =
    [
      ("code", Json.String d.Diagnostic.code);
      ("rule", Json.String d.Diagnostic.rule);
      ( "severity",
        Json.String (Diagnostic.severity_to_string d.Diagnostic.severity) );
      ("file", Json.String d.Diagnostic.file);
    ]
  in
  let loc =
    match d.Diagnostic.loc with
    | Some l ->
        [ ("line", Json.Int l.Diagnostic.line); ("col", Json.Int l.Diagnostic.col) ]
    | None -> []
  in
  let subject =
    ("type", Json.String (Diagnostic.subject_type d.Diagnostic.subject))
    ::
    (match Diagnostic.subject_member d.Diagnostic.subject with
    | Some m -> [ ("member", Json.String m) ]
    | None -> [])
  in
  Json.Obj
    (base @ loc @ subject @ [ ("message", Json.String d.Diagnostic.message) ])

let to_json diags =
  let s = summarize diags in
  Json.Obj
    [
      ("version", Json.Int 1);
      ("diagnostics", Json.List (List.map diag_json diags));
      ( "summary",
        Json.Obj
          [
            ("errors", Json.Int s.errors);
            ("warnings", Json.Int s.warnings);
            ("infos", Json.Int s.infos);
          ] );
    ]
