module Strutil = Pti_util.Strutil

type t = {
  disabled : string list;  (* lowercased codes *)
  overrides : (string * Diagnostic.severity) list;
}

let default = { disabled = []; overrides = [] }
let norm = String.lowercase_ascii

let resolve code =
  match Rules.find code with
  | Some r -> Ok r
  | None -> Error (Printf.sprintf "unknown rule code %S" code)

let apply_spec t spec =
  let enableing, code =
    match spec with
    | "" -> (true, "")
    | _ when spec.[0] = '+' -> (true, String.sub spec 1 (String.length spec - 1))
    | _ when spec.[0] = '-' -> (false, String.sub spec 1 (String.length spec - 1))
    | _ -> (true, spec)
  in
  match resolve code with
  | Error _ as e -> e
  | Ok r ->
      let key = norm r.Rules.code in
      let disabled = List.filter (fun c -> c <> key) t.disabled in
      Ok { t with disabled = (if enableing then disabled else key :: disabled) }

let apply_severity t spec =
  match Strutil.split_on '=' spec with
  | [ code; level ] -> (
      match resolve code with
      | Error _ as e -> e
      | Ok r -> (
          match Diagnostic.severity_of_string (norm level) with
          | None ->
              Error
                (Printf.sprintf
                   "unknown severity %S (expected error, warning or info)"
                   level)
          | Some sev ->
              let key = norm r.Rules.code in
              Ok
                {
                  t with
                  overrides =
                    (key, sev) :: List.remove_assoc key t.overrides;
                }))
  | _ -> Error (Printf.sprintf "malformed severity override %S (want CODE=LEVEL)" spec)

let enabled t (r : Rules.rule) = not (List.mem (norm r.Rules.code) t.disabled)

let severity_for t (r : Rules.rule) =
  List.assoc_opt (norm r.Rules.code) t.overrides
