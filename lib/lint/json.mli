(** A minimal JSON tree and printer — just enough for the machine-readable
    lint report ([pti lint --format json]); no external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** [pretty] (default true) indents objects and lists by two spaces;
    strings are escaped per RFC 8259 (control characters as [\uXXXX]). *)
