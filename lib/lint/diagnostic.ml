type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0

type loc = { line : int; col : int }

type subject =
  | Type of string
  | Field of string * string
  | Method of string * string * int
  | Ctor of string * int

let subject_type = function
  | Type t | Field (t, _) | Method (t, _, _) | Ctor (t, _) -> t

let subject_member = function
  | Type _ -> None
  | Field (_, f) -> Some (Printf.sprintf "field %s" f)
  | Method (_, m, a) -> Some (Printf.sprintf "method %s/%d" m a)
  | Ctor (_, a) -> Some (Printf.sprintf "ctor/%d" a)

type t = {
  code : string;
  rule : string;
  severity : severity;
  file : string;
  loc : loc option;
  subject : subject;
  message : string;
}

let subject_string s =
  match subject_member s with
  | None -> subject_type s
  | Some m -> subject_type s ^ "." ^ m

let compare a b =
  let line d = match d.loc with Some l -> l.line | None -> max_int in
  let cmp =
    [
      (fun () -> String.compare a.file b.file);
      (fun () -> Int.compare (line a) (line b));
      (fun () -> String.compare a.code b.code);
      (fun () -> String.compare (subject_string a.subject) (subject_string b.subject));
      (fun () -> String.compare a.message b.message);
    ]
  in
  List.fold_left (fun acc f -> if acc <> 0 then acc else f ()) 0 cmp

let pp ppf d =
  let pos =
    match d.loc with
    | Some l -> Printf.sprintf "%s:%d" d.file l.line
    | None -> d.file
  in
  Format.fprintf ppf "%s: %s %s: %s  (%s)" pos
    (severity_to_string d.severity)
    d.code d.message d.rule
