(** Rendering a diagnostic list for humans ([--format text]) and machines
    ([--format json]), plus the process exit status. *)

type summary = { errors : int; warnings : int; infos : int }

val summarize : Diagnostic.t list -> summary

val exit_code : Diagnostic.t list -> int
(** [1] when any diagnostic has severity [Error], else [0]. *)

val to_text : Diagnostic.t list -> string
(** One line per diagnostic plus a trailing summary line; ["no interop \
    hazards found"] when the list is empty. *)

val to_json : Diagnostic.t list -> Json.t
(** [{"version": 1, "diagnostics": [...], "summary": {...}}]. Each
    diagnostic carries [code], [rule], [severity], [file], optional
    [line]/[col], [type], optional [member] and [message]. *)
