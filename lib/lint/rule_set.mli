(** Which rules run, and at what severity — the [--rule] / [--severity]
    surface of [pti lint]. *)

type t

val default : t
(** Every rule enabled, per-diagnostic severities untouched. *)

val apply_spec : t -> string -> (t, string) result
(** [apply_spec t "+PTI004"] / ["-PTI004"] enables/disables one rule;
    a bare code means enable. Specs compose left to right. [Error]
    with a message for unknown codes or malformed specs. *)

val apply_severity : t -> string -> (t, string) result
(** [apply_severity t "PTI003=info"] forces every diagnostic of that rule
    to the given severity (overriding per-case grading). *)

val enabled : t -> Rules.rule -> bool

val severity_for : t -> Rules.rule -> Diagnostic.severity option
(** [Some s] when an override is in force; [None] keeps each diagnostic's
    own severity. *)
