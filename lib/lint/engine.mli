(** The analysis driver: runs every enabled rule over a set of parsed
    inputs and returns a stable, deduplicated diagnostic list. *)

open Pti_conformance

val run :
  ?config:Config.t ->
  ?near_distance:int ->
  ?rule_set:Rule_set.t ->
  Rules.source list ->
  Diagnostic.t list
(** [config] (default {!Config.strict}) is the conformance configuration
    the hazards are judged against — lint at the distance you deploy at.
    [near_distance] (default 2) bounds the PTI004 near-miss window.
    Diagnostics are sorted by {!Diagnostic.compare} with duplicates
    removed; rule-set severity overrides are already applied. *)
