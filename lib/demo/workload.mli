(** Synthetic type populations for the protocol (E5) and safety-ablation
    (E6) experiments.

    Each family lives in its own namespace and assembly and mimics the
    [newsw.Person]/[newsw.Address] module written by yet another
    programmer. Depending on [flavor], the family is:

    - [Conformant]: implicitly structurally conformant to [newsw.Person] —
      method names case-mangled, member order shuffled, constructor
      arguments permuted (all derived deterministically from the family
      index);
    - [Trap_missing]: the setters are missing — rejected by the full rules,
      accepted by name-only rules, and fails at run time on [setName];
    - [Trap_arity]: [getName] takes a spurious argument — same story for
      arity;
    - [Trap_fieldtype]: the [age] field (and its accessors) use [float]
      instead of [int] — caught by the field aspect (rule ii) and by the
      method aspect; with both disabled it corrupts arithmetic at run
      time;
    - [Typo of d]: structurally conformant but the class name is [d] edits
      away from ["Person"] ([1 <= d <= 3]). *)

open Pti_cts

type flavor = Conformant | Trap_missing | Trap_arity | Trap_fieldtype | Typo of int

val flavor_name : flavor -> string

val family : index:int -> flavor:flavor -> Assembly.t
(** Deterministic: equal arguments yield identical assemblies (and GUIDs).
    Equal to [family_v ~version:1]. *)

val family_v : version:int -> index:int -> flavor:flavor -> Assembly.t
(** The family at a given schema revision. [~version:1] is {!family}
    exactly. Later revisions only {e add} members (an [email] field and
    its accessors) and restamp the assembly version, so every revision
    still conforms to the v1 interest — the rolling-upgrade shape of
    experiment E15. The revised person class carries a
    version-derived GUID (a new identity for a new structure);
    unchanged classes keep theirs. *)

val person_name : index:int -> flavor:flavor -> string
(** Qualified name of the family's person class. *)

val make_person : Registry.t -> index:int -> flavor:flavor -> name:string ->
  age:int -> Value.value
(** Construct an instance (the family's assembly must be loaded). *)

val interest_person : string
(** ["wnews.Person"] — the canonical receiver-side type of interest the
    chaos/scale/model-checking harnesses register. It mirrors the family
    shape but deliberately omits the [spouse] field: rule ii makes field
    types invariant, so an interest demanding a self-referential field
    would freeze the sender's type (no additive revision could ever
    conform again). Keeping the evolving family out of its own invariant
    closure is what lets {!family_v}[ ~version:2] conform to the same
    interest v1 receivers registered. *)

val interest_assembly : unit -> Assembly.t
(** The assembly defining {!interest_person} (and [wnews.Address]) —
    install it on a receiver before registering the interest. *)

val interest_methods : (string * Value.value list) list
(** The calls a [newsw.Person] client would make — used to probe whether an
    accepted object actually works (E6's runtime-failure count). Each entry
    is a method name plus arguments. *)
