open Pti_cts
module B = Builder
module E = Expr
module Sm = Pti_util.Splitmix

type flavor = Conformant | Trap_missing | Trap_arity | Trap_fieldtype | Typo of int

let flavor_name = function
  | Conformant -> "conformant"
  | Trap_missing -> "trap-missing"
  | Trap_arity -> "trap-arity"
  | Trap_fieldtype -> "trap-fieldtype"
  | Typo d -> Printf.sprintf "typo-%d" d

let flavor_tag = function
  | Conformant -> 0
  | Trap_missing -> 1
  | Trap_arity -> 2
  | Trap_fieldtype -> 3
  | Typo d -> 16 + d

(* Deterministic case-mangling: the "other programmer's" spelling. *)
let mangle rng s =
  String.map
    (fun c ->
      if Sm.bool rng then Char.uppercase_ascii c else Char.lowercase_ascii c)
    s

let typo_class_name d =
  (* "Person" with the last [d] letters replaced by 'x'/'z' alternating. *)
  let base = Bytes.of_string "Person" in
  for k = 0 to min d (Bytes.length base) - 1 do
    Bytes.set base
      (Bytes.length base - 1 - k)
      (if k mod 2 = 0 then 'm' else 'z')
  done;
  Bytes.to_string base

let class_name flavor =
  match flavor with
  | Conformant | Trap_missing | Trap_arity | Trap_fieldtype -> "Person"
  | Typo d -> typo_class_name d

let ns_of index flavor = Printf.sprintf "w%d%s" index
    (match flavor with
    | Conformant -> ""
    | Trap_missing -> "tm"
    | Trap_arity -> "ta"
    | Trap_fieldtype -> "tf"
    | Typo d -> Printf.sprintf "ty%d" d)

let person_name ~index ~flavor =
  Printf.sprintf "%s.%s" (ns_of index flavor) (class_name flavor)

let asm_name index flavor =
  Printf.sprintf "wl-%d-%s" index (flavor_name flavor)

(* Whether this family permutes its constructor arguments. *)
let permutes rng = Sm.bool rng

let family_v ~version ~index ~flavor =
  let rng = Sm.create (Int64.of_int ((index * 64) + flavor_tag flavor + 1)) in
  let ns = ns_of index flavor in
  let asm = asm_name index flavor in
  let pname = person_name ~index ~flavor in
  (* A revised Person needs its own GUID — same GUID with different
     structure is an identity collision [Registry.upgrade] rejects.
     Unchanged classes (Address) keep their default name-derived GUID,
     so their identity is stable across revisions. The RNG seed ignores
     [version]: every name spelling is identical across revisions, which
     is what keeps v2 conformant to a v1 interest. *)
  let person_guid =
    if version <= 1 then None
    else Some (Pti_util.Guid.of_name (Printf.sprintf "%s#v%d!%s" asm version pname))
  in
  let aname = ns ^ ".Address" in
  let m = mangle rng in
  (* Address: conformant mirror of newsw.Address. *)
  let addr_perm = permutes rng in
  let addr_ctor_params =
    if addr_perm then [ ("c", Ty.String); ("s", Ty.String) ]
    else [ ("s", Ty.String); ("c", Ty.String) ]
  in
  let address =
    B.class_ ~ns:[ ns ] ~assembly:asm "Address"
    |> B.ctor
         ~body:
           (E.Seq [ E.set "street" (E.Var "s"); E.set "city" (E.Var "c") ])
         addr_ctor_params
    |> B.field "street" Ty.String
    |> B.getter (m "getStreet") ~field:"street" Ty.String
    |> B.setter (m "setStreet") ~field:"street" Ty.String
    |> B.field "city" Ty.String
    |> B.getter (m "getCity") ~field:"city" Ty.String
    |> B.setter (m "setCity") ~field:"city" Ty.String
    |> B.method_ (m "format") [] Ty.String
         ~body:
           (E.Binop
              ( E.Concat,
                E.get "street",
                E.Binop (E.Concat, E.str ", ", E.get "city") ))
    |> B.build
  in
  let perm = permutes rng in
  let age_ty =
    match flavor with Trap_fieldtype -> Ty.Float | _ -> Ty.Int
  in
  let ctor_params =
    if perm then [ ("a", age_ty); ("n", Ty.String) ]
    else [ ("n", Ty.String); ("a", age_ty) ]
  in
  let getname_params =
    match flavor with
    | Trap_arity -> [ ("pad", Ty.Int) ]
    | Conformant | Trap_missing | Trap_fieldtype | Typo _ -> []
  in
  let person =
    B.class_ ~ns:[ ns ] ?guid:person_guid ~assembly:asm (class_name flavor)
    |> B.ctor
         ~body:(E.Seq [ E.set "name" (E.Var "n"); E.set "age" (E.Var "a") ])
         ctor_params
    |> B.field "name" Ty.String
    |> B.method_ (m "getName") getname_params Ty.String ~body:(E.get "name")
    |> B.field "age" age_ty
    |> B.getter (m "getAge") ~field:"age" age_ty
    |> B.field "home" (Ty.Named aname)
    |> B.getter (m "getHome") ~field:"home" (Ty.Named aname)
    |> B.field "spouse" (Ty.Named pname)
    |> B.getter (m "getSpouse") ~field:"spouse" (Ty.Named pname)
    |> B.method_ (m "greet") [] Ty.String
         ~body:(E.Binop (E.Concat, E.str "Hello, ", E.get "name"))
    |> B.method_ (m "older") [ ("years", Ty.Int) ] Ty.Int
         ~body:(E.Binop (E.Add, E.get "age", E.Var "years"))
  in
  let person =
    match flavor with
    | Trap_missing ->
        (* No setters at all: structurally deficient. *)
        person
    | Conformant | Trap_arity | Trap_fieldtype | Typo _ ->
        person
        |> B.setter (m "setName") ~field:"name" Ty.String
        |> B.setter (m "setAge") ~field:"age" age_ty
        |> B.setter (m "setHome") ~field:"home" (Ty.Named aname)
        |> B.setter (m "setSpouse") ~field:"spouse" (Ty.Named pname)
  in
  (* Revisions widen the type — members are only added, never removed or
     retyped — so every revision still conforms to the v1 interest (old
     receivers keep working), while the new accessors make the revision
     structurally (and by digest) distinct. Appended after all v1 mangle
     calls so the shared spellings are untouched. *)
  let person =
    if version <= 1 then person
    else
      person
      |> B.field "email" Ty.String ~init:(E.str "new@v2")
      |> B.getter (m "getEmail") ~field:"email" Ty.String
      |> B.setter (m "setEmail") ~field:"email" Ty.String
  in
  Assembly.make ~version ~name:asm [ address; B.build person ]

let family ~index ~flavor = family_v ~version:1 ~index ~flavor

let make_person reg ~index ~flavor ~name ~age =
  (* The constructor's parameter order is family-specific (possibly
     permuted); read it off the loaded metadata instead of re-deriving it. *)
  let qname = person_name ~index ~flavor in
  let cd =
    match Registry.find reg qname with
    | Some cd -> cd
    | None -> invalid_arg ("Workload.make_person: " ^ qname ^ " not loaded")
  in
  let ctor =
    match cd.Meta.td_ctors with
    | [ c ] -> c
    | _ -> invalid_arg "Workload.make_person: expected one constructor"
  in
  let args =
    List.map
      (fun p ->
        match p.Meta.param_ty with
        | Ty.String -> Value.Vstring name
        | Ty.Int -> Value.Vint age
        | Ty.Float -> Value.Vfloat (float_of_int age)
        | _ -> Value.Vnull)
      ctor.Meta.c_params
  in
  Eval.construct reg qname args

(* The canonical receiver-side vocabulary the harnesses register as their
   type of interest. It mirrors the family shape — same fields, accessors,
   [greet]/[older] — with one deliberate omission: the [spouse] field.
   Rule ii makes field types invariant, so an interest that demands a
   self-referential field ([spouse : Person]) freezes the sender's type
   for good: any member a revision adds breaks the reverse direction of
   the invariance check, and no additive upgrade can ever conform again.
   Leaving [spouse] out of the interest keeps the evolving family out of
   its own invariant closure, which is what makes the v2 revision (the
   added [email] member) conformant while v1 receivers keep working. *)

let interest_person = "wnews.Person"
let interest_asm_name = "wl-news"

let interest_address_def asm =
  B.class_ ~ns:[ "wnews" ] ~assembly:asm "Address"
  |> B.ctor
       ~body:(E.Seq [ E.set "street" (E.Var "s"); E.set "city" (E.Var "c") ])
       [ ("s", Ty.String); ("c", Ty.String) ]
  |> B.property "street" Ty.String
  |> B.property "city" Ty.String
  |> B.method_ "format" [] Ty.String
       ~body:
         (E.Binop
            ( E.Concat,
              E.get "street",
              E.Binop (E.Concat, E.str ", ", E.get "city") ))
  |> B.build

let interest_person_def asm =
  B.class_ ~ns:[ "wnews" ] ~assembly:asm "Person"
  |> B.ctor
       ~body:(E.Seq [ E.set "name" (E.Var "n"); E.set "age" (E.Var "a") ])
       [ ("n", Ty.String); ("a", Ty.Int) ]
  |> B.property "name" Ty.String
  |> B.property "age" Ty.Int
  |> B.field "home" (Ty.Named "wnews.Address")
  |> B.getter "getHome" ~field:"home" (Ty.Named "wnews.Address")
  |> B.setter "setHome" ~field:"home" (Ty.Named "wnews.Address")
  |> B.method_ "greet" [] Ty.String
       ~body:(E.Binop (E.Concat, E.str "Hello, ", E.get "name"))
  |> B.method_ "older" [ ("years", Ty.Int) ] Ty.Int
       ~body:(E.Binop (E.Add, E.get "age", E.Var "years"))
  |> B.build

let interest_assembly () =
  Assembly.make ~name:interest_asm_name
    [ interest_address_def interest_asm_name;
      interest_person_def interest_asm_name ]

let interest_methods =
  [
    ("getName", []);
    ("setName", [ Value.Vstring "probe" ]);
    ("getAge", []);
    ("setAge", [ Value.Vint 77 ]);
    ("greet", []);
    ("older", [ Value.Vint 2 ]);
    ("getSpouse", []);
    ("setSpouse", [ Value.Vnull ]);
    ("getHome", []);
    ("setHome", [ Value.Vnull ]);
  ]
