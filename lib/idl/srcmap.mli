(** Source locations for parsed definitions.

    The definition-language front ends ({!Idl}, {!Vbdl}) compile to CTS
    metadata, which deliberately carries no provenance — descriptions must
    stay identical however a type was authored. Tools that report {e back}
    to the author (notably the [pti lint] static analyzer) still want line
    numbers, so the parsers can optionally fill one of these side tables
    while they run: qualified type names and members map to the line/column
    of their declaration.

    Keys are case-insensitive, matching the CTS name rule; members are
    keyed by kind, name and (for methods and constructors) arity, so
    overloads by arity resolve to their own lines. *)

type loc = { line : int; col : int }
(** 1-based; [col] is [1] for the line-oriented VB front end. *)

type t

val create : unit -> t

(** {1 Recording} (used by the front ends) *)

val add_type : t -> type_:string -> loc -> unit
val add_field : t -> type_:string -> string -> loc -> unit
val add_method : t -> type_:string -> string -> arity:int -> loc -> unit
val add_ctor : t -> type_:string -> arity:int -> loc -> unit

(** {1 Lookup} (all by qualified type name, case-insensitive) *)

val type_loc : t -> string -> loc option
val field_loc : t -> type_:string -> string -> loc option
val method_loc : t -> type_:string -> string -> arity:int -> loc option
val ctor_loc : t -> type_:string -> arity:int -> loc option
