open Pti_cts
open Surface

type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Err of error

let fail line fmt = Printf.ksprintf (fun message -> raise (Err { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Line preparation                                                     *)
(* ------------------------------------------------------------------ *)

type line = { num : int; text : string }

(* Strip VB comments (' to end of line, outside string literals). *)
let strip_comment s =
  let b = Buffer.create (String.length s) in
  let in_string = ref false in
  (try
     String.iter
       (fun c ->
         if c = '"' then begin
           in_string := not !in_string;
           Buffer.add_char b c
         end
         else if c = '\'' && not !in_string then raise Exit
         else Buffer.add_char b c)
       s
   with Exit -> ());
  Buffer.contents b

let prepare src =
  String.split_on_char '\n' src
  |> List.mapi (fun i text -> { num = i + 1; text = String.trim (strip_comment text) })
  |> List.filter (fun l -> l.text <> "")

(* ------------------------------------------------------------------ *)
(* In-line tokenizer                                                    *)
(* ------------------------------------------------------------------ *)

type tok =
  | Tword of string  (** identifier or keyword (original case kept) *)
  | Tint of int
  | Tfloat of float
  | Tstring of string
  | Tpunct of string  (** one of ( ) , . & + - * / = <> <= >= < > *)

let tokenize ln s =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  let is_id = function
    | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' -> true
    | _ -> false
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '"' then begin
      incr i;
      let b = Buffer.create 8 in
      let closed = ref false in
      while (not !closed) && !i < n do
        if s.[!i] = '"' then
          (* VB escapes a quote by doubling it. *)
          if !i + 1 < n && s.[!i + 1] = '"' then begin
            Buffer.add_char b '"';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char b s.[!i];
          incr i
        end
      done;
      if not !closed then fail ln "unterminated string literal";
      out := Tstring (Buffer.contents b) :: !out
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && (match s.[!i] with '0' .. '9' -> true | _ -> false) do
        incr i
      done;
      if
        !i < n && s.[!i] = '.'
        && !i + 1 < n
        && match s.[!i + 1] with '0' .. '9' -> true | _ -> false
      then begin
        incr i;
        while !i < n && (match s.[!i] with '0' .. '9' -> true | _ -> false) do
          incr i
        done;
        out := Tfloat (float_of_string (String.sub s start (!i - start))) :: !out
      end
      else out := Tint (int_of_string (String.sub s start (!i - start))) :: !out
    end
    else if is_id c then begin
      let start = !i in
      while !i < n && is_id s.[!i] do
        incr i
      done;
      out := Tword (String.sub s start (!i - start)) :: !out
    end
    else begin
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      match two with
      | "<>" | "<=" | ">=" ->
          out := Tpunct two :: !out;
          i := !i + 2
      | _ -> (
          match c with
          | '(' | ')' | ',' | '.' | '&' | '+' | '-' | '*' | '/' | '=' | '<'
          | '>' ->
              out := Tpunct (String.make 1 c) :: !out;
              incr i
          | c -> fail ln "unexpected character %C" c)
    end
  done;
  List.rev !out

let kw a b = String.lowercase_ascii a = b

(* ------------------------------------------------------------------ *)
(* Expression parser over a token list                                  *)
(* ------------------------------------------------------------------ *)

type estate = { ln : int; mutable toks : tok list }

let peek st = match st.toks with [] -> None | t :: _ -> Some t
let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let expect_punct st p =
  match st.toks with
  | Tpunct q :: r when q = p -> st.toks <- r
  | _ -> fail st.ln "expected %S" p

let vb_ty ln name =
  match String.lowercase_ascii name with
  | "string" -> Ty.String
  | "integer" -> Ty.Int
  | "boolean" -> Ty.Bool
  | "double" -> Ty.Float
  | "char" -> Ty.Char
  | "void" -> Ty.Void
  | _ ->
      if name = "" then fail ln "expected a type name" else Ty.Named name

let rec parse_qname st =
  match peek st with
  | Some (Tword w) -> (
      advance st;
      match st.toks with
      | Tpunct "." :: (Tword _ :: _ as rest) ->
          st.toks <- rest;
          w ^ "." ^ parse_qname st
      | _ -> w)
  | _ -> fail st.ln "expected a name"

let parse_ty st =
  let base = parse_qname st in
  let ty = ref (vb_ty st.ln base) in
  let rec arrays () =
    match st.toks with
    | Tpunct "(" :: Tpunct ")" :: r ->
        st.toks <- r;
        ty := Ty.Array !ty;
        arrays ()
    | _ -> ()
  in
  arrays ();
  !ty

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  let rec go () =
    match peek st with
    | Some (Tword w) when kw w "or" ->
        advance st;
        lhs := Sbinop (Expr.Or, !lhs, parse_and st);
        go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_and st =
  let lhs = ref (parse_cmp st) in
  let rec go () =
    match peek st with
    | Some (Tword w) when kw w "and" ->
        advance st;
        lhs := Sbinop (Expr.And, !lhs, parse_cmp st);
        go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_cmp st =
  let lhs = parse_concat st in
  match peek st with
  | Some (Tpunct "=") ->
      advance st;
      Sbinop (Expr.Eq, lhs, parse_concat st)
  | Some (Tpunct "<>") ->
      advance st;
      Sbinop (Expr.Neq, lhs, parse_concat st)
  | Some (Tpunct "<") ->
      advance st;
      Sbinop (Expr.Lt, lhs, parse_concat st)
  | Some (Tpunct "<=") ->
      advance st;
      Sbinop (Expr.Le, lhs, parse_concat st)
  | Some (Tpunct ">") ->
      advance st;
      Sbinop (Expr.Gt, lhs, parse_concat st)
  | Some (Tpunct ">=") ->
      advance st;
      Sbinop (Expr.Ge, lhs, parse_concat st)
  | _ -> lhs

and parse_concat st =
  let lhs = ref (parse_add st) in
  let rec go () =
    match peek st with
    | Some (Tpunct "&") ->
        advance st;
        lhs := Sbinop (Expr.Concat, !lhs, parse_add st);
        go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_add st =
  let lhs = ref (parse_mul st) in
  let rec go () =
    match peek st with
    | Some (Tpunct "+") ->
        advance st;
        lhs := Sbinop (Expr.Add, !lhs, parse_mul st);
        go ()
    | Some (Tpunct "-") ->
        advance st;
        lhs := Sbinop (Expr.Sub, !lhs, parse_mul st);
        go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_mul st =
  let lhs = ref (parse_unary st) in
  let rec go () =
    match peek st with
    | Some (Tpunct "*") ->
        advance st;
        lhs := Sbinop (Expr.Mul, !lhs, parse_unary st);
        go ()
    | Some (Tpunct "/") ->
        advance st;
        lhs := Sbinop (Expr.Div, !lhs, parse_unary st);
        go ()
    | Some (Tword w) when kw w "mod" ->
        advance st;
        lhs := Sbinop (Expr.Mod, !lhs, parse_unary st);
        go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_unary st =
  match peek st with
  | Some (Tpunct "-") ->
      advance st;
      Sneg (parse_unary st)
  | Some (Tword w) when kw w "not" ->
      advance st;
      Snot (parse_unary st)
  | _ -> parse_postfix st (parse_primary st)

and parse_primary st =
  match peek st with
  | Some (Tint i) ->
      advance st;
      Sint i
  | Some (Tfloat f) ->
      advance st;
      Sfloat f
  | Some (Tstring s) ->
      advance st;
      Sstr s
  | Some (Tpunct "(") ->
      advance st;
      let e = parse_expr st in
      expect_punct st ")";
      e
  | Some (Tword w) when kw w "true" ->
      advance st;
      Sbool true
  | Some (Tword w) when kw w "false" ->
      advance st;
      Sbool false
  | Some (Tword w) when kw w "nothing" ->
      advance st;
      Snull
  | Some (Tword w) when kw w "me" ->
      advance st;
      Sthis
  | Some (Tword w) when kw w "new" ->
      advance st;
      let cls = parse_qname st in
      let args = parse_args st in
      Snew (cls, args)
  | Some (Tword w) ->
      advance st;
      Sident w
  | _ -> fail st.ln "expected an expression"

and parse_postfix st e =
  match st.toks with
  | Tpunct "." :: Tword name :: rest -> (
      st.toks <- rest;
      match peek st with
      | Some (Tpunct "(") ->
          let args = parse_args st in
          parse_postfix st (Scall (e, name, args))
      | _ -> parse_postfix st (Sfieldref (e, name)))
  | _ -> e

and parse_args st =
  expect_punct st "(";
  match peek st with
  | Some (Tpunct ")") ->
      advance st;
      []
  | _ ->
      let args = ref [ parse_expr st ] in
      let rec go () =
        match peek st with
        | Some (Tpunct ",") ->
            advance st;
            args := parse_expr st :: !args;
            go ()
        | _ -> ()
      in
      go ();
      expect_punct st ")";
      List.rev !args

let parse_full_expr ln toks =
  let st = { ln; toks } in
  let e = parse_expr st in
  if st.toks <> [] then fail ln "trailing tokens after expression";
  e

(* ------------------------------------------------------------------ *)
(* Statement / block parsing (line-oriented)                            *)
(* ------------------------------------------------------------------ *)

type pstate = { mutable lines : line list }

let next_line ps =
  match ps.lines with
  | [] -> None
  | l :: rest ->
      ps.lines <- rest;
      Some l

let peek_line ps = match ps.lines with [] -> None | l :: _ -> Some l

let words_of l = tokenize l.num l.text

let line_starts_with l k =
  match words_of l with Tword w :: _ -> kw w k | _ -> false

(* Parse statements until one of the given (lowercase) terminator phrases
   starts a line; the terminator line is consumed and returned. *)
let rec parse_stmts ps ~terminators =
  let stmts = ref [] in
  let rec go () =
    match next_line ps with
    | None -> fail 0 "unexpected end of input (missing %s)" (String.concat "/" terminators)
    | Some l ->
        let low = String.lowercase_ascii l.text in
        let is_term t =
          low = t
          || String.length low > String.length t
             && String.sub low 0 (String.length t + 1) = t ^ " "
        in
        (match List.find_opt is_term terminators with
        | Some t -> (List.rev !stmts, t, l)
        | None ->
            stmts := parse_stmt ps l :: !stmts;
            go ())
  in
  go ()

and parse_stmt ps l =
  let toks = words_of l in
  match toks with
  | Tword w :: rest when kw w "dim" -> (
      (* local: Dim x = expr   (fields use Dim at class level) *)
      match rest with
      | Tword x :: Tpunct "=" :: e -> Slet (x, parse_full_expr l.num e)
      | _ -> fail l.num "expected 'Dim name = expression'")
  | Tword w :: rest when kw w "return" -> Sreturn (parse_full_expr l.num rest)
  | Tword w :: rest when kw w "throw" -> Sthrow (parse_full_expr l.num rest)
  | Tword w :: rest when kw w "while" ->
      let cond = parse_full_expr l.num rest in
      let body, _, _ = parse_stmts ps ~terminators:[ "end while" ] in
      Swhile (cond, body)
  | Tword w :: rest when kw w "if" -> (
      (* If cond Then ... [Else ...] End If  — Then must end the line. *)
      let rec split_then acc = function
        | [ Tword t ] when kw t "then" -> List.rev acc
        | t :: r -> split_then (t :: acc) r
        | [] -> fail l.num "expected 'Then' at end of If line"
      in
      let cond = parse_full_expr l.num (split_then [] rest) in
      let then_branch, term, _ =
        parse_stmts ps ~terminators:[ "else"; "end if" ]
      in
      match term with
      | "else" ->
          let else_branch, _, _ = parse_stmts ps ~terminators:[ "end if" ] in
          Sif (cond, then_branch, else_branch)
      | _ -> Sif (cond, then_branch, []))
  | _ -> (
      (* assignment or expression statement: find a top-level '=' *)
      let rec split acc depth = function
        | Tpunct "(" :: r -> split (Tpunct "(" :: acc) (depth + 1) r
        | Tpunct ")" :: r -> split (Tpunct ")" :: acc) (depth - 1) r
        | Tpunct "=" :: r when depth = 0 -> Some (List.rev acc, r)
        | t :: r -> split (t :: acc) depth r
        | [] -> None
      in
      match split [] 0 toks with
      | None -> Sexpr (parse_full_expr l.num toks)
      | Some (lhs_toks, rhs_toks) -> (
          let rhs = parse_full_expr l.num rhs_toks in
          match parse_full_expr l.num lhs_toks with
          | Sident name -> Sassign (name, rhs)
          | Sfieldref (o, f) -> Sfieldset (o, f, rhs)
          | _ -> fail l.num "left side of '=' must be a name or a field"))

(* ------------------------------------------------------------------ *)
(* Declarations                                                         *)
(* ------------------------------------------------------------------ *)

let parse_param_list ln toks =
  let st = { ln; toks } in
  expect_punct st "(";
  let params = ref [] in
  (match peek st with
  | Some (Tpunct ")") -> advance st
  | _ ->
      let one () =
        match st.toks with
        | Tword name :: Tword asw :: rest when kw asw "as" ->
            st.toks <- rest;
            let ty = parse_ty st in
            params := (name, ty) :: !params
        | _ -> fail ln "expected 'name As Type'"
      in
      one ();
      let rec go () =
        match peek st with
        | Some (Tpunct ",") ->
            advance st;
            one ();
            go ()
        | _ -> ()
      in
      go ();
      expect_punct st ")");
  (List.rev !params, st.toks)

let parse_mods toks =
  let visibility = ref Meta.Public and static = ref false in
  let rec go = function
    | Tword w :: rest when kw w "public" ->
        visibility := Meta.Public;
        go rest
    | Tword w :: rest when kw w "private" ->
        visibility := Meta.Private;
        go rest
    | Tword w :: rest when kw w "protected" ->
        visibility := Meta.Protected;
        go rest
    | Tword w :: rest when kw w "shared" ->
        static := true;
        go rest
    | rest -> rest
  in
  let rest = go toks in
  ({ Meta.visibility = !visibility; static = !static; virtual_ = true }, rest)

let lower_body ln scope stmts =
  try lower_block scope stmts
  with Lower_error message -> raise (Err { line = ln; message })

let parse_members ps ~end_kw ~kind ~note =
  let fields = ref [] and ctors = ref [] and methods = ref [] in
  let rec go () =
    match next_line ps with
    | None -> fail 0 "unexpected end of input (missing %s)" end_kw
    | Some l ->
        if String.lowercase_ascii l.text = end_kw then ()
        else begin
          let mods, toks = parse_mods (words_of l) in
          (match toks with
          | Tword w :: Tword name :: Tword asw :: rest
            when kw w "dim" && kw asw "as" ->
              let st = { ln = l.num; toks = rest } in
              let ty = parse_ty st in
              let init =
                match st.toks with
                | [] -> None
                | Tpunct "=" :: e ->
                    Some (lower_expr [] (parse_full_expr l.num e))
                | _ -> fail l.num "trailing tokens after field declaration"
              in
              note (`Field name) l.num;
              fields :=
                { Meta.f_name = name; f_ty = ty; f_mods = mods; f_init = init }
                :: !fields
          | Tword w :: Tword nw :: rest when kw w "sub" && kw nw "new" ->
              let params, leftover = parse_param_list l.num rest in
              if leftover <> [] then fail l.num "trailing tokens after Sub New";
              note (`Ctor (List.length params)) l.num;
              let body, _, _ = parse_stmts ps ~terminators:[ "end sub" ] in
              let scope = List.map fst params in
              ctors :=
                {
                  Meta.c_params =
                    List.map
                      (fun (n, ty) -> { Meta.param_name = n; param_ty = ty })
                      params;
                  c_mods = mods;
                  c_body = Some (lower_body l.num scope body);
                }
                :: !ctors
          | Tword w :: Tword name :: rest when kw w "sub" ->
              let params, leftover = parse_param_list l.num rest in
              if leftover <> [] then fail l.num "trailing tokens after Sub";
              note (`Method (name, List.length params)) l.num;
              let body =
                if kind = Meta.Interface then None
                else begin
                  let stmts, _, _ = parse_stmts ps ~terminators:[ "end sub" ] in
                  Some
                    (Expr.Seq
                       [ lower_body l.num (List.map fst params) stmts; Expr.null ])
                end
              in
              methods :=
                {
                  Meta.m_name = name;
                  m_params =
                    List.map
                      (fun (n, ty) -> { Meta.param_name = n; param_ty = ty })
                      params;
                  m_return = Ty.Void;
                  m_mods = mods;
                  m_body = body;
                }
                :: !methods
          | Tword w :: Tword name :: rest when kw w "function" ->
              let params, leftover = parse_param_list l.num rest in
              note (`Method (name, List.length params)) l.num;
              let ret =
                match leftover with
                | Tword asw :: tyrest when kw asw "as" ->
                    let st = { ln = l.num; toks = tyrest } in
                    let ty = parse_ty st in
                    if st.toks <> [] then
                      fail l.num "trailing tokens after return type";
                    ty
                | _ -> fail l.num "expected 'As <type>' on Function"
              in
              let body =
                if kind = Meta.Interface then None
                else begin
                  let stmts, _, _ =
                    parse_stmts ps ~terminators:[ "end function" ]
                  in
                  Some (lower_body l.num (List.map fst params) stmts)
                end
              in
              methods :=
                {
                  Meta.m_name = name;
                  m_params =
                    List.map
                      (fun (n, ty) -> { Meta.param_name = n; param_ty = ty })
                      params;
                  m_return = ret;
                  m_mods = mods;
                  m_body = body;
                }
                :: !methods
          | _ ->
              fail l.num
                "expected 'Dim', 'Sub', 'Function' or '%s'" end_kw);
          go ()
        end
  in
  go ();
  (List.rev !fields, List.rev !ctors, List.rev !methods)

let parse_class ps ~namespace ~assembly ~kind ~name ~line ~srcmap =
  (* Optional Inherits / Implements lines directly after the header. *)
  let super = ref None and interfaces = ref [] in
  let rec headers () =
    match peek_line ps with
    | Some l when line_starts_with l "inherits" ->
        ignore (next_line ps);
        (match words_of l with
        | _ :: rest ->
            let st = { ln = l.num; toks = rest } in
            super := Some (parse_qname st)
        | [] -> ());
        headers ()
    | Some l when line_starts_with l "implements" ->
        ignore (next_line ps);
        (match words_of l with
        | _ :: rest ->
            let st = { ln = l.num; toks = rest } in
            let rec names () =
              interfaces := parse_qname st :: !interfaces;
              match peek st with
              | Some (Tpunct ",") ->
                  advance st;
                  names ()
              | _ -> ()
            in
            names ()
        | [] -> ());
        headers ()
    | _ -> ()
  in
  headers ();
  let end_kw =
    match kind with Meta.Class -> "end class" | Meta.Interface -> "end interface"
  in
  let qualified =
    match namespace with
    | [] -> name
    | ns -> String.concat "." ns ^ "." ^ name
  in
  let loc num = { Srcmap.line = num; col = 1 } in
  let note entry num =
    match srcmap with
    | None -> ()
    | Some sm -> (
        match entry with
        | `Field f -> Srcmap.add_field sm ~type_:qualified f (loc num)
        | `Method (m, a) -> Srcmap.add_method sm ~type_:qualified m ~arity:a (loc num)
        | `Ctor a -> Srcmap.add_ctor sm ~type_:qualified ~arity:a (loc num))
  in
  (match srcmap with
  | None -> ()
  | Some sm -> Srcmap.add_type sm ~type_:qualified (loc line));
  let fields, ctors, methods = parse_members ps ~end_kw ~kind ~note in
  {
    Meta.td_name = name;
    td_namespace = namespace;
    td_guid =
      Pti_util.Guid.of_name (assembly ^ "!" ^ String.lowercase_ascii qualified);
    td_kind = kind;
    td_super = !super;
    td_interfaces = List.rev !interfaces;
    td_fields = fields;
    td_ctors = ctors;
    td_methods = methods;
    td_assembly = assembly;
  }

let parse_unit ps ~default_assembly ~srcmap =
  let assembly = ref default_assembly and namespace = ref [] in
  let classes = ref [] in
  let rec go () =
    match next_line ps with
    | None -> ()
    | Some l ->
        (match words_of l with
        | Tword w :: rest when kw w "assembly" -> (
            match rest with
            | [ Tstring s ] -> assembly := s
            | [ Tword s ] -> assembly := s
            | _ -> fail l.num "expected 'Assembly \"name\"'")
        | Tword w :: rest when kw w "namespace" -> (
            match rest with
            | [] -> fail l.num "expected a namespace"
            | toks ->
                let st = { ln = l.num; toks } in
                namespace :=
                  Pti_util.Strutil.split_on '.' (parse_qname st))
        | Tword w :: [ Tword name ] when kw w "class" ->
            classes :=
              parse_class ps ~namespace:!namespace ~assembly:!assembly
                ~kind:Meta.Class ~name ~line:l.num ~srcmap
              :: !classes
        | Tword w :: [ Tword name ] when kw w "interface" ->
            classes :=
              parse_class ps ~namespace:!namespace ~assembly:!assembly
                ~kind:Meta.Interface ~name ~line:l.num ~srcmap
              :: !classes
        | _ ->
            fail l.num
              "expected 'Assembly', 'Namespace', 'Class' or 'Interface'");
        go ()
  in
  go ();
  (!assembly, List.rev !classes)

(* ------------------------------------------------------------------ *)
(* Entry points                                                         *)
(* ------------------------------------------------------------------ *)

let parse_classes ?(assembly = "vbdl") ?srcmap src =
  match
    let ps = { lines = prepare src } in
    parse_unit ps ~default_assembly:assembly ~srcmap
  with
  | _, classes ->
      let rec check = function
        | [] -> Ok classes
        | cd :: rest -> (
            match Meta.validate cd with
            | Ok () -> check rest
            | Error message -> Error { line = 0; message })
      in
      check classes
  | exception Err e -> Error e
  | exception Lower_error message -> Error { line = 0; message }

let parse_assembly ?(assembly = "vbdl") ?(requires = []) ?srcmap src =
  match
    let ps = { lines = prepare src } in
    parse_unit ps ~default_assembly:assembly ~srcmap
  with
  | name, classes -> (
      match Assembly.make ~requires ~name classes with
      | asm -> Ok asm
      | exception Invalid_argument message -> Error { line = 0; message })
  | exception Err e -> Error e
  | exception Lower_error message -> Error { line = 0; message }

let parse_class_exn ?assembly src =
  match parse_classes ?assembly src with
  | Ok [ cd ] -> cd
  | Ok l ->
      invalid_arg
        (Printf.sprintf "Vbdl.parse_class_exn: expected 1 class, got %d"
           (List.length l))
  | Error e -> invalid_arg (Format.asprintf "Vbdl.parse_class_exn: %a" pp_error e)
