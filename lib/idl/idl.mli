(** A textual definition language for CTS types.

    The Renaissance system the paper builds on (§2.6) used an explicit
    interface-definition language ("lingua franca"); the paper's approach
    deliberately binds to the platform's own type system instead. This
    module provides the best of both: a small C#-flavoured surface syntax
    that {e compiles to} ordinary CTS metadata ({!Pti_cts.Meta.class_def})
    — handy for authoring interest types, test fixtures and CLI input
    without writing builder code.

    {1 Syntax}

    {v
assembly news-asm;
namespace newsw;

interface INamed {
  method getName() : string;
}

class Person extends newsw.Base implements newsw.INamed {
  field name : string;
  field age : int = 0;
  property home : newsw.Address;        // field + getHome/setHome

  ctor(n : string, a : int) { name = n; age = a; }

  method getName() : string { return name; }
  method setName(v : string) : void { name = v; }
  method greet() : string { return "Hello, " ^ name; }
  method older(years : int) : int { return age + years; }
  static method zero() : int { return 0; }
}
    v}

    Statements: [let x = e;], [x = e;] (locals/params, else fields of
    [this]), [e.f = v;], [a\[i\] = v;], [if (c) { .. } else { .. }],
    [while (c) { .. }], [for (let i = e; cond; i = step) { .. }],
    [throw e;], [try { .. } catch (x) { .. }], expression statements, and
    a trailing [return e;]. Expressions: literals ([int], [float],
    ["string"], [true], [false], [null]), identifiers (params/locals,
    else implicit [this] fields), [this], [e.m(args)] method calls,
    [e.f] field reads, [a\[i\]] indexing, [new C(args)],
    [new ty\[\] { e1, e2 }] array literals, [C::m(args)] static calls,
    arithmetic/comparison/boolean operators, [^] string concatenation,
    and parentheses. [//] and [/* */] comments.

    Types: [void bool int float string char], qualified names, and [ty\[\]]
    arrays. Modifiers: [public]/[protected]/[private] and [static] prefix
    method or field declarations.

    GUIDs are derived like the {!Pti_cts.Builder} DSL's (assembly +
    qualified name), so parsing the same source twice yields identical
    assemblies. *)

type error = { line : int; col : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse_classes : ?assembly:string -> ?srcmap:Srcmap.t -> string ->
  (Pti_cts.Meta.class_def list, error) result
(** Parse a compilation unit. [assembly] overrides a missing
    [assembly ...;] directive (default ["idl"]). When [srcmap] is given,
    the declaration line/column of every type and member is recorded in
    it (for diagnostics that point back at the source, e.g. [pti lint]). *)

val parse_assembly : ?assembly:string -> ?requires:string list ->
  ?srcmap:Srcmap.t -> string -> (Pti_cts.Assembly.t, error) result
(** [parse_classes] bundled into an assembly (validates every class). *)

val parse_class_exn : ?assembly:string -> string -> Pti_cts.Meta.class_def
(** Convenience for fixtures: expects exactly one class.
    @raise Invalid_argument on errors. *)
