open Pti_cts

type error = { line : int; col : int; message : string }

let pp_error ppf e =
  Format.fprintf ppf "line %d, column %d: %s" e.line e.col e.message

exception Err of error

(* ------------------------------------------------------------------ *)
(* Lexer                                                                *)
(* ------------------------------------------------------------------ *)

type token =
  | Tident of string
  | Tint of int
  | Tfloat of float
  | Tstring of string
  | Tlparen
  | Trparen
  | Tlbrace
  | Trbrace
  | Tlbracket
  | Trbracket
  | Tsemi
  | Tcolon
  | Tcoloncolon
  | Tcomma
  | Tdot
  | Teq
  | Teqeq
  | Tneq
  | Tlt
  | Tle
  | Tgt
  | Tge
  | Tplus
  | Tminus
  | Tstar
  | Tslash
  | Tpercent
  | Tcaret
  | Tandand
  | Toror
  | Tbang
  | Teof

let token_name = function
  | Tident s -> Printf.sprintf "identifier %S" s
  | Tint i -> Printf.sprintf "integer %d" i
  | Tfloat f -> Printf.sprintf "float %g" f
  | Tstring s -> Printf.sprintf "string %S" s
  | Tlparen -> "'('"
  | Trparen -> "')'"
  | Tlbrace -> "'{'"
  | Trbrace -> "'}'"
  | Tlbracket -> "'['"
  | Trbracket -> "']'"
  | Tsemi -> "';'"
  | Tcolon -> "':'"
  | Tcoloncolon -> "'::'"
  | Tcomma -> "','"
  | Tdot -> "'.'"
  | Teq -> "'='"
  | Teqeq -> "'=='"
  | Tneq -> "'!='"
  | Tlt -> "'<'"
  | Tle -> "'<='"
  | Tgt -> "'>'"
  | Tge -> "'>='"
  | Tplus -> "'+'"
  | Tminus -> "'-'"
  | Tstar -> "'*'"
  | Tslash -> "'/'"
  | Tpercent -> "'%'"
  | Tcaret -> "'^'"
  | Tandand -> "'&&'"
  | Toror -> "'||'"
  | Tbang -> "'!'"
  | Teof -> "end of input"

type lexed = { tok : token; tline : int; tcol : int }

let lex src =
  let n = String.length src in
  let line = ref 1 and col = ref 1 and i = ref 0 in
  let out = ref [] in
  let fail message = raise (Err { line = !line; col = !col; message }) in
  let advance () =
    (if !i < n then
       if src.[!i] = '\n' then begin
         incr line;
         col := 1
       end
       else incr col);
    incr i
  in
  let peek k = if !i + k < n then src.[!i + k] else '\000' in
  let emit tok tline tcol = out := { tok; tline; tcol } :: !out in
  let is_id_start = function
    | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
    | _ -> false
  in
  let is_id = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
    | _ -> false
  in
  while !i < n do
    let c = src.[!i] and tline = !line and tcol = !col in
    match c with
    | ' ' | '\t' | '\r' | '\n' -> advance ()
    | '/' when peek 1 = '/' ->
        while !i < n && src.[!i] <> '\n' do
          advance ()
        done
    | '/' when peek 1 = '*' ->
        advance ();
        advance ();
        let closed = ref false in
        while (not !closed) && !i < n do
          if src.[!i] = '*' && peek 1 = '/' then begin
            advance ();
            advance ();
            closed := true
          end
          else advance ()
        done;
        if not !closed then fail "unterminated comment"
    | '(' -> advance (); emit Tlparen tline tcol
    | ')' -> advance (); emit Trparen tline tcol
    | '{' -> advance (); emit Tlbrace tline tcol
    | '}' -> advance (); emit Trbrace tline tcol
    | '[' -> advance (); emit Tlbracket tline tcol
    | ']' -> advance (); emit Trbracket tline tcol
    | ';' -> advance (); emit Tsemi tline tcol
    | ',' -> advance (); emit Tcomma tline tcol
    | '.' -> advance (); emit Tdot tline tcol
    | '+' -> advance (); emit Tplus tline tcol
    | '-' -> advance (); emit Tminus tline tcol
    | '*' -> advance (); emit Tstar tline tcol
    | '/' -> advance (); emit Tslash tline tcol
    | '%' -> advance (); emit Tpercent tline tcol
    | '^' -> advance (); emit Tcaret tline tcol
    | ':' ->
        advance ();
        if peek 0 = ':' then begin
          advance ();
          emit Tcoloncolon tline tcol
        end
        else emit Tcolon tline tcol
    | '=' ->
        advance ();
        if peek 0 = '=' then begin
          advance ();
          emit Teqeq tline tcol
        end
        else emit Teq tline tcol
    | '!' ->
        advance ();
        if peek 0 = '=' then begin
          advance ();
          emit Tneq tline tcol
        end
        else emit Tbang tline tcol
    | '<' ->
        advance ();
        if peek 0 = '=' then begin
          advance ();
          emit Tle tline tcol
        end
        else emit Tlt tline tcol
    | '>' ->
        advance ();
        if peek 0 = '=' then begin
          advance ();
          emit Tge tline tcol
        end
        else emit Tgt tline tcol
    | '&' ->
        advance ();
        if peek 0 = '&' then begin
          advance ();
          emit Tandand tline tcol
        end
        else fail "expected '&&'"
    | '|' ->
        advance ();
        if peek 0 = '|' then begin
          advance ();
          emit Toror tline tcol
        end
        else fail "expected '||'"
    | '"' ->
        advance ();
        let b = Buffer.create 16 in
        let closed = ref false in
        while (not !closed) && !i < n do
          let d = src.[!i] in
          if d = '"' then begin
            advance ();
            closed := true
          end
          else if d = '\\' then begin
            advance ();
            (match peek 0 with
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | '\\' -> Buffer.add_char b '\\'
            | '"' -> Buffer.add_char b '"'
            | e -> fail (Printf.sprintf "bad escape '\\%c'" e));
            advance ()
          end
          else begin
            Buffer.add_char b d;
            advance ()
          end
        done;
        if not !closed then fail "unterminated string literal";
        emit (Tstring (Buffer.contents b)) tline tcol
    | '0' .. '9' ->
        let start = !i in
        while !i < n && (match src.[!i] with '0' .. '9' -> true | _ -> false) do
          advance ()
        done;
        if !i < n && src.[!i] = '.'
           && match peek 1 with '0' .. '9' -> true | _ -> false
        then begin
          advance ();
          while
            !i < n && match src.[!i] with '0' .. '9' -> true | _ -> false
          do
            advance ()
          done;
          emit
            (Tfloat (float_of_string (String.sub src start (!i - start))))
            tline tcol
        end
        else
          emit (Tint (int_of_string (String.sub src start (!i - start)))) tline
            tcol
    | c when is_id_start c ->
        let start = !i in
        while !i < n && is_id src.[!i] do
          advance ()
        done;
        emit (Tident (String.sub src start (!i - start))) tline tcol
    | c -> fail (Printf.sprintf "unexpected character %C" c)
  done;
  emit Teof !line !col;
  Array.of_list (List.rev !out)

open Surface

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)
(* ------------------------------------------------------------------ *)

type parser_state = { toks : lexed array; mutable pos : int }

let cur st = st.toks.(st.pos)
let tok st = (cur st).tok

let fail_at st message =
  let l = cur st in
  raise (Err { line = l.tline; col = l.tcol; message })

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let expect st t =
  if tok st = t then advance st
  else
    fail_at st
      (Printf.sprintf "expected %s, found %s" (token_name t)
         (token_name (tok st)))

let ident st =
  match tok st with
  | Tident s ->
      advance st;
      s
  | t -> fail_at st (Printf.sprintf "expected an identifier, found %s" (token_name t))

let keyword st = match tok st with Tident s -> Some s | _ -> None

let eat_keyword st kw =
  match keyword st with
  | Some s when String.equal s kw ->
      advance st;
      true
  | _ -> false

(* Qualified name: a.b.C *)
let qname st =
  let first = ident st in
  let parts = ref [ first ] in
  while tok st = Tdot do
    advance st;
    parts := ident st :: !parts
  done;
  String.concat "." (List.rev !parts)

let parse_ty st =
  let base = qname st in
  let ty = ref (match Ty.of_string base with Some t -> t | None -> Ty.Named base) in
  while tok st = Tlbracket do
    advance st;
    expect st Trbracket;
    ty := Ty.Array !ty
  done;
  !ty

(* A qualified name that may still turn into a static call (a.b.C::m). *)
let rec parse_primary st =
  match tok st with
  | Tint i ->
      advance st;
      Sint i
  | Tfloat f ->
      advance st;
      Sfloat f
  | Tstring s ->
      advance st;
      Sstr s
  | Tlparen ->
      advance st;
      let e = parse_expr st in
      expect st Trparen;
      e
  | Tident "true" ->
      advance st;
      Sbool true
  | Tident "false" ->
      advance st;
      Sbool false
  | Tident "null" ->
      advance st;
      Snull
  | Tident "this" ->
      advance st;
      Sthis
  | Tident "new" ->
      advance st;
      let base = qname st in
      if tok st = Tlbracket then begin
        (* new ty[] { e1, e2, ... } *)
        advance st;
        expect st Trbracket;
        let elem =
          match Ty.of_string base with Some t -> t | None -> Ty.Named base
        in
        expect st Tlbrace;
        let items = ref [] in
        if tok st <> Trbrace then begin
          items := [ parse_expr st ];
          while tok st = Tcomma do
            advance st;
            items := parse_expr st :: !items
          done
        end;
        expect st Trbrace;
        Snewarr (elem, List.rev !items)
      end
      else
        let args = parse_args st in
        Snew (base, args)
  | Tident _ ->
      (* Could be: local/field ident, or a qualified static call C::m(..),
         or the head of a dotted chain handled by postfix. *)
      let name = ident st in
      if tok st = Tcoloncolon then begin
        advance st;
        let m = ident st in
        let args = parse_args st in
        Sstatic (name, m, args)
      end
      else if tok st = Tdot then parse_dotted st (Sident name)
      else Sident name
  | t -> fail_at st (Printf.sprintf "expected an expression, found %s" (token_name t))

(* Dotted chains are ambiguous between namespace paths and member access;
   we resolve greedily: if the chain ends in '::' it was a qualified class
   for a static call, otherwise the first segment is a value and the rest
   are member accesses/calls. *)
and parse_dotted st head =
  (* Look ahead: collect the whole ident chain. If a '::' follows it, the
     chain (including the head, when it is an identifier) names a class. *)
  let save = st.pos in
  let segs = ref [] in
  let ok = ref true in
  while !ok && tok st = Tdot do
    advance st;
    match tok st with
    | Tident s ->
        advance st;
        segs := s :: !segs
    | _ -> ok := false
  done;
  if (not !ok) || !segs = [] then fail_at st "expected a member name after '.'";
  if tok st = Tcoloncolon then begin
    match head with
    | Sident first ->
        advance st;
        let m = ident st in
        let args = parse_args st in
        let cls = String.concat "." (first :: List.rev !segs) in
        Sstatic (cls, m, args)
    | _ -> fail_at st "'::' must follow a class name"
  end
  else begin
    (* Re-parse as member accesses: rewind and apply postfix. *)
    st.pos <- save;
    parse_postfix st head
  end

and parse_postfix st e =
  if tok st = Tdot then begin
    advance st;
    let name = ident st in
    if tok st = Tlparen then
      let args = parse_args st in
      parse_postfix st (Scall (e, name, args))
    else parse_postfix st (Sfieldref (e, name))
  end
  else if tok st = Tlbracket then begin
    advance st;
    let i = parse_expr st in
    expect st Trbracket;
    parse_postfix st (Sindex (e, i))
  end
  else e

and parse_args st =
  expect st Tlparen;
  if tok st = Trparen then begin
    advance st;
    []
  end
  else begin
    let args = ref [ parse_expr st ] in
    while tok st = Tcomma do
      advance st;
      args := parse_expr st :: !args
    done;
    expect st Trparen;
    List.rev !args
  end

and parse_unary st =
  match tok st with
  | Tminus ->
      advance st;
      Sneg (parse_unary st)
  | Tbang ->
      advance st;
      Snot (parse_unary st)
  | _ -> parse_postfix st (parse_primary st)

and parse_mul st =
  let rec go lhs =
    match tok st with
    | Tstar ->
        advance st;
        go (Sbinop (Expr.Mul, lhs, parse_unary st))
    | Tslash ->
        advance st;
        go (Sbinop (Expr.Div, lhs, parse_unary st))
    | Tpercent ->
        advance st;
        go (Sbinop (Expr.Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_add st =
  let rec go lhs =
    match tok st with
    | Tplus ->
        advance st;
        go (Sbinop (Expr.Add, lhs, parse_mul st))
    | Tminus ->
        advance st;
        go (Sbinop (Expr.Sub, lhs, parse_mul st))
    | Tcaret ->
        advance st;
        go (Sbinop (Expr.Concat, lhs, parse_mul st))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_cmp st =
  let lhs = parse_add st in
  match tok st with
  | Tlt ->
      advance st;
      Sbinop (Expr.Lt, lhs, parse_add st)
  | Tle ->
      advance st;
      Sbinop (Expr.Le, lhs, parse_add st)
  | Tgt ->
      advance st;
      Sbinop (Expr.Gt, lhs, parse_add st)
  | Tge ->
      advance st;
      Sbinop (Expr.Ge, lhs, parse_add st)
  | _ -> lhs

and parse_eq st =
  let lhs = parse_cmp st in
  match tok st with
  | Teqeq ->
      advance st;
      Sbinop (Expr.Eq, lhs, parse_cmp st)
  | Tneq ->
      advance st;
      Sbinop (Expr.Neq, lhs, parse_cmp st)
  | _ -> lhs

and parse_and st =
  let rec go lhs =
    if tok st = Tandand then begin
      advance st;
      go (Sbinop (Expr.And, lhs, parse_eq st))
    end
    else lhs
  in
  go (parse_eq st)

and parse_expr st =
  let rec go lhs =
    if tok st = Toror then begin
      advance st;
      go (Sbinop (Expr.Or, lhs, parse_and st))
    end
    else lhs
  in
  go (parse_and st)

(* --------------------------- statements --------------------------- *)

let rec parse_stmt st =
  match keyword st with
  | Some "let" ->
      advance st;
      let name = ident st in
      expect st Teq;
      let e = parse_expr st in
      expect st Tsemi;
      Slet (name, e)
  | Some "return" ->
      advance st;
      let e = parse_expr st in
      expect st Tsemi;
      Sreturn e
  | Some "throw" ->
      advance st;
      let e = parse_expr st in
      expect st Tsemi;
      Sthrow e
  | Some "try" ->
      advance st;
      let body = parse_block st in
      if not (eat_keyword st "catch") then fail_at st "expected 'catch'";
      expect st Tlparen;
      let var = ident st in
      expect st Trparen;
      let handler = parse_block st in
      Stry (body, var, handler)
  | Some "if" ->
      advance st;
      expect st Tlparen;
      let c = parse_expr st in
      expect st Trparen;
      let then_ = parse_block st in
      let else_ =
        if eat_keyword st "else" then parse_block st else []
      in
      Sif (c, then_, else_)
  | Some "while" ->
      advance st;
      expect st Tlparen;
      let c = parse_expr st in
      expect st Trparen;
      let body = parse_block st in
      Swhile (c, body)
  | Some "for" ->
      (* for (let i = e; cond; i = step) { body }  --  sugar for
         let i = e; while (cond) { body; i = step; } *)
      advance st;
      expect st Tlparen;
      if not (eat_keyword st "let") then fail_at st "expected 'let' in for";
      let var = ident st in
      expect st Teq;
      let init = parse_expr st in
      expect st Tsemi;
      let cond = parse_expr st in
      expect st Tsemi;
      let step_var = ident st in
      expect st Teq;
      let step = parse_expr st in
      expect st Trparen;
      let body = parse_block st in
      Sfor (var, init, cond, step_var, step, body)
  | _ -> (
      (* assignment or expression statement *)
      let e = parse_expr st in
      match tok st, e with
      | Teq, Sident name ->
          advance st;
          let v = parse_expr st in
          expect st Tsemi;
          Sassign (name, v)
      | Teq, Sfieldref (obj, f) ->
          advance st;
          let v = parse_expr st in
          expect st Tsemi;
          Sfieldset (obj, f, v)
      | Teq, Sindex (a, i) ->
          advance st;
          let v = parse_expr st in
          expect st Tsemi;
          Sindexset (a, i, v)
      | Teq, _ -> fail_at st "left side of '=' must be a name or a field"
      | _ ->
          expect st Tsemi;
          Sexpr e)

and parse_block st =
  expect st Tlbrace;
  let stmts = ref [] in
  while tok st <> Trbrace do
    stmts := parse_stmt st :: !stmts
  done;
  expect st Trbrace;
  List.rev !stmts

(* ------------------------------------------------------------------ *)
(* Declarations                                                         *)
(* ------------------------------------------------------------------ *)

let parse_params st =
  expect st Tlparen;
  if tok st = Trparen then begin
    advance st;
    []
  end
  else begin
    let one () =
      let name = ident st in
      expect st Tcolon;
      let ty = parse_ty st in
      (name, ty)
    in
    let params = ref [ one () ] in
    while tok st = Tcomma do
      advance st;
      params := one () :: !params
    done;
    expect st Trparen;
    List.rev !params
  end

let parse_mods st =
  let visibility = ref Meta.Public and static = ref false in
  let continue_ = ref true in
  while !continue_ do
    match keyword st with
    | Some "public" ->
        advance st;
        visibility := Meta.Public
    | Some "private" ->
        advance st;
        visibility := Meta.Private
    | Some "protected" ->
        advance st;
        visibility := Meta.Protected
    | Some "static" ->
        advance st;
        static := true
    | _ -> continue_ := false
  done;
  { Meta.visibility = !visibility; static = !static; virtual_ = true }

let capitalize s =
  if s = "" then s
  else String.make 1 (Char.uppercase_ascii s.[0])
       ^ String.sub s 1 (String.length s - 1)

let loc_of_cur st =
  let l = cur st in
  { Srcmap.line = l.tline; col = l.tcol }

let parse_class st ~namespace ~assembly ~srcmap =
  let class_loc = loc_of_cur st in
  let kind =
    if eat_keyword st "class" then Meta.Class
    else if eat_keyword st "interface" then Meta.Interface
    else fail_at st "expected 'class' or 'interface'"
  in
  let name = ident st in
  let super =
    if eat_keyword st "extends" then Some (qname st) else None
  in
  let interfaces =
    if eat_keyword st "implements" then begin
      let is = ref [ qname st ] in
      while tok st = Tcomma do
        advance st;
        is := qname st :: !is
      done;
      List.rev !is
    end
    else []
  in
  expect st Tlbrace;
  let fields = ref [] and ctors = ref [] and methods = ref [] in
  let mlocs = ref [] in
  let note entry loc = mlocs := (entry, loc) :: !mlocs in
  while tok st <> Trbrace do
    let mloc = loc_of_cur st in
    let mods = parse_mods st in
    match keyword st with
    | Some "field" ->
        advance st;
        let fname = ident st in
        note (`Field fname) mloc;
        expect st Tcolon;
        let fty = parse_ty st in
        let init =
          if tok st = Teq then begin
            advance st;
            Some (lower_expr [] (parse_expr st))
          end
          else None
        in
        expect st Tsemi;
        fields :=
          { Meta.f_name = fname; f_ty = fty; f_mods = mods; f_init = init }
          :: !fields
    | Some "property" ->
        advance st;
        let pname = ident st in
        expect st Tcolon;
        let pty = parse_ty st in
        expect st Tsemi;
        fields :=
          { Meta.f_name = pname; f_ty = pty; f_mods = mods; f_init = None }
          :: !fields;
        let cap = capitalize pname in
        note (`Field pname) mloc;
        note (`Method ("get" ^ cap, 0)) mloc;
        note (`Method ("set" ^ cap, 1)) mloc;
        methods :=
          {
            Meta.m_name = "set" ^ cap;
            m_params = [ { Meta.param_name = "value"; param_ty = pty } ];
            m_return = Ty.Void;
            m_mods = mods;
            m_body =
              Some
                (Expr.Seq
                   [
                     Expr.Field_set (Expr.This, pname, Expr.Var "value");
                     Expr.null;
                   ]);
          }
          :: {
               Meta.m_name = "get" ^ cap;
               m_params = [];
               m_return = pty;
               m_mods = mods;
               m_body = Some (Expr.Field_get (Expr.This, pname));
             }
          :: !methods
    | Some "ctor" ->
        advance st;
        let params = parse_params st in
        note (`Ctor (List.length params)) mloc;
        let body = parse_block st in
        let scope = List.map fst params in
        ctors :=
          {
            Meta.c_params =
              List.map
                (fun (n, ty) -> { Meta.param_name = n; param_ty = ty })
                params;
            c_mods = mods;
            c_body = Some (lower_block scope body);
          }
          :: !ctors
    | Some "method" ->
        advance st;
        let mname = ident st in
        let params = parse_params st in
        note (`Method (mname, List.length params)) mloc;
        expect st Tcolon;
        let ret = parse_ty st in
        let body =
          if tok st = Tsemi then begin
            advance st;
            None
          end
          else begin
            let stmts = parse_block st in
            Some (lower_block (List.map fst params) stmts)
          end
        in
        methods :=
          {
            Meta.m_name = mname;
            m_params =
              List.map
                (fun (n, ty) -> { Meta.param_name = n; param_ty = ty })
                params;
            m_return = ret;
            m_mods = mods;
            m_body = body;
          }
          :: !methods
    | _ -> fail_at st "expected 'field', 'property', 'ctor' or 'method'"
  done;
  expect st Trbrace;
  let qualified =
    match namespace with
    | [] -> name
    | ns -> String.concat "." ns ^ "." ^ name
  in
  (match srcmap with
  | None -> ()
  | Some sm ->
      Srcmap.add_type sm ~type_:qualified class_loc;
      List.iter
        (fun (entry, loc) ->
          match entry with
          | `Field f -> Srcmap.add_field sm ~type_:qualified f loc
          | `Method (m, a) -> Srcmap.add_method sm ~type_:qualified m ~arity:a loc
          | `Ctor a -> Srcmap.add_ctor sm ~type_:qualified ~arity:a loc)
        (List.rev !mlocs));
  {
    Meta.td_name = name;
    td_namespace = namespace;
    td_guid =
      Pti_util.Guid.of_name
        (assembly ^ "!" ^ String.lowercase_ascii qualified);
    td_kind = kind;
    td_super = super;
    td_interfaces = interfaces;
    td_fields = List.rev !fields;
    td_ctors = List.rev !ctors;
    td_methods = List.rev !methods;
    td_assembly = assembly;
  }

let parse_unit st ~default_assembly ~srcmap =
  let assembly = ref default_assembly in
  let namespace = ref [] in
  let classes = ref [] in
  while tok st <> Teof do
    match keyword st with
    | Some "assembly" ->
        advance st;
        (match tok st with
        | Tstring s ->
            advance st;
            assembly := s
        | Tident s ->
            advance st;
            assembly := s
        | t -> fail_at st (Printf.sprintf "expected an assembly name, found %s" (token_name t)));
        expect st Tsemi
    | Some "namespace" ->
        advance st;
        namespace := Pti_util.Strutil.split_on '.' (qname st);
        expect st Tsemi
    | Some ("class" | "interface") ->
        classes :=
          parse_class st ~namespace:!namespace ~assembly:!assembly ~srcmap
          :: !classes
    | _ ->
        fail_at st "expected 'assembly', 'namespace', 'class' or 'interface'"
  done;
  (!assembly, List.rev !classes)

(* ------------------------------------------------------------------ *)
(* Entry points                                                         *)
(* ------------------------------------------------------------------ *)

let parse_classes ?(assembly = "idl") ?srcmap src =
  match
    let toks = lex src in
    let st = { toks; pos = 0 } in
    parse_unit st ~default_assembly:assembly ~srcmap
  with
  | _, classes ->
      (* Validate every class so IDL mistakes surface as errors here. *)
      let rec check = function
        | [] -> Ok classes
        | cd :: rest -> (
            match Meta.validate cd with
            | Ok () -> check rest
            | Error message -> Error { line = 0; col = 0; message })
      in
      check classes
  | exception Err e -> Error e
  | exception Surface.Lower_error message -> Error { line = 0; col = 0; message }

let parse_assembly ?(assembly = "idl") ?(requires = []) ?srcmap src =
  match
    let toks = lex src in
    let st = { toks; pos = 0 } in
    parse_unit st ~default_assembly:assembly ~srcmap
  with
  | name, classes -> (
      match Assembly.make ~requires ~name classes with
      | asm -> Ok asm
      | exception Invalid_argument message ->
          Error { line = 0; col = 0; message })
  | exception Err e -> Error e
  | exception Surface.Lower_error message -> Error { line = 0; col = 0; message }

let parse_class_exn ?assembly src =
  match parse_classes ?assembly src with
  | Ok [ cd ] -> cd
  | Ok l ->
      invalid_arg
        (Printf.sprintf "Idl.parse_class_exn: expected 1 class, got %d"
           (List.length l))
  | Error e -> invalid_arg (Format.asprintf "Idl.parse_class_exn: %a" pp_error e)
