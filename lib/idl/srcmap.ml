type loc = { line : int; col : int }

type t = (string, loc) Hashtbl.t

let create () : t = Hashtbl.create 32

let norm s = String.lowercase_ascii s

let type_key ty = norm ty
let field_key ty f = Printf.sprintf "%s#field:%s" (norm ty) (norm f)

let method_key ty m arity =
  Printf.sprintf "%s#method:%s/%d" (norm ty) (norm m) arity

let ctor_key ty arity = Printf.sprintf "%s#ctor/%d" (norm ty) arity

(* First writer wins: the declaration site, not a later duplicate. *)
let add t k loc = if not (Hashtbl.mem t k) then Hashtbl.add t k loc

let add_type t ~type_ loc = add t (type_key type_) loc
let add_field t ~type_ f loc = add t (field_key type_ f) loc
let add_method t ~type_ m ~arity loc = add t (method_key type_ m arity) loc
let add_ctor t ~type_ ~arity loc = add t (ctor_key type_ arity) loc

let type_loc t ty = Hashtbl.find_opt t (type_key ty)
let field_loc t ~type_ f = Hashtbl.find_opt t (field_key type_ f)
let method_loc t ~type_ m ~arity = Hashtbl.find_opt t (method_key type_ m arity)
let ctor_loc t ~type_ ~arity = Hashtbl.find_opt t (ctor_key type_ arity)
