(** A second definition language, VB-flavoured — because the paper's
    scenario is types written {e in different languages}.

    The .NET platform the paper builds on makes C# and VB.NET classes
    meet in one common type system; here {!Idl} (C#-flavoured, braces)
    and this module (VB-flavoured, line-oriented) both compile to the
    same {!Pti_cts.Meta.class_def} metadata and interpreted bodies, so a
    VB-authored type and a C#-authored type interoperate exactly like the
    paper's polyglot modules.

    {1 Syntax}

    {v
Assembly "vb-asm"
Namespace vbw

Class Person
  Dim name As String
  Dim age As Integer

  Sub New(n As String, a As Integer)
    name = n
    age = a
  End Sub

  Function getName() As String
    Return name
  End Function

  Sub setName(v As String)
    name = v
  End Sub

  Function greet() As String
    Return "Hello, " & name
  End Function

  Function older(years As Integer) As Integer
    Return age + years
  End Function
End Class

Interface INamed
  Function getName() As String
End Interface
    v}

    Keywords are case-insensitive, statements end at the line break, ['']
    starts a comment. [Class X] may carry [Inherits base] and
    [Implements i1, i2] on the following lines. Members: [Dim f As Ty]
    (optionally [= expr]), [Sub New(params)] constructors, [Function
    name(params) As Ty] and [Sub name(params)] methods ([Shared] prefix
    for static, [Private]/[Public] for visibility). Statements: [Dim x =
    e], assignment, [If c Then ... Else ... End If], [While c ... End
    While], [Return e], [Throw e], expression statements. Expressions:
    the usual operators with VB spellings — [&] concatenation, [=]/[<>]
    comparison, [And]/[Or]/[Not], [New C(args)], member access and calls.
    Types: [String], [Integer], [Boolean], [Double], [Char], or qualified
    CTS names; [Ty()] arrays. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse_classes : ?assembly:string -> ?srcmap:Srcmap.t -> string ->
  (Pti_cts.Meta.class_def list, error) result
(** When [srcmap] is given, the declaration line of every type and member
    is recorded in it (column is always 1; the front end is line-oriented). *)

val parse_assembly : ?assembly:string -> ?requires:string list ->
  ?srcmap:Srcmap.t -> string -> (Pti_cts.Assembly.t, error) result

val parse_class_exn : ?assembly:string -> string -> Pti_cts.Meta.class_def
(** @raise Invalid_argument on errors or when not exactly one class. *)
