let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let hash64 ?(init = offset_basis) s =
  let h = ref init in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let to_hex h = Printf.sprintf "%016Lx" h
let hash_hex s = to_hex (hash64 s)

let hash_bytes s =
  let h = hash64 s in
  let b = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set b i
      (Char.chr
         (Int64.to_int (Int64.logand (Int64.shift_right_logical h ((7 - i) * 8)) 0xFFL)))
  done;
  Bytes.to_string b
