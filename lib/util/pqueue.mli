(** Imperative binary-heap priority queue (min-heap).

    Backbone of the discrete-event network simulator: events are ordered by
    delivery time, with a monotonically increasing sequence number breaking
    ties so that simultaneous events pop in insertion order (deterministic
    replay). *)

type 'a t

val create : ?initial_capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns the minimum element. *)

val peek : 'a t -> 'a option
val clear : 'a t -> unit

val to_list_unordered : 'a t -> 'a list
(** Current contents in internal (heap) order; for inspection in tests. *)

val remove_where : 'a t -> f:('a -> bool) -> 'a option
(** Remove and return the first element satisfying [f] (linear scan),
    restoring the heap invariant. [None] if nothing matches — the queue
    is unchanged. Lets a scheduler fire a chosen event out of heap
    order (the model checker's enabled-event hook). *)
