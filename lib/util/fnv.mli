(** FNV-1a 64-bit checksum.

    Used as the integrity digest on serialized envelopes and binary
    payloads. Not cryptographic — it guards against wire corruption, not
    adversaries. Every absorption step [h <- (h lxor byte) * prime] is a
    bijection of the 64-bit accumulator, so any single-byte substitution
    (and any single bit flip) changes the final hash: a flipped byte is
    always detected. *)

val hash64 : ?init:int64 -> string -> int64
(** FNV-1a over the bytes of the string. [init] defaults to the standard
    offset basis; pass a previous result to chain several fragments. *)

val to_hex : int64 -> string
(** 16 lowercase hex digits, zero padded. *)

val hash_hex : string -> string
(** [to_hex (hash64 s)]. *)

val hash_bytes : string -> string
(** The hash as 8 raw bytes, big-endian — for binary codecs. *)
