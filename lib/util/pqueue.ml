type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
  cap_hint : int;
}

(* The backing array stays [||] until the first push, which allocates it
   with the pushed element as filler. No [Obj.magic] placeholder: a
   fabricated value of type ['a] is unsound when ['a] is [float] (the
   flat-float-array representation would unbox a forged immediate). *)
let create ?(initial_capacity = 16) ~cmp () =
  { cmp; data = [||]; size = 0; cap_hint = max 1 initial_capacity }

let length t = t.size
let is_empty t = t.size = 0

let grow t =
  let cap = Array.length t.data in
  (* [t.data.(0)] is a live element, so it is a legitimate filler. *)
  let data = Array.make (cap * 2) t.data.(0) in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.size && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t x =
  if Array.length t.data = 0 then t.data <- Array.make t.cap_hint x
  else if t.size = Array.length t.data then grow t;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0;
      (* Release the vacated slot for the GC by duplicating a live
         element into it. *)
      t.data.(t.size) <- t.data.(0)
    end
    else
      (* Nothing live left to use as filler — drop the array wholesale. *)
      t.data <- [||];
    Some top
  end

let clear t =
  t.data <- [||];
  t.size <- 0

(* Remove the first element satisfying [f] (linear scan): the vacated
   slot is filled with the last element, which is then sifted in both
   directions to restore the heap invariant. *)
let remove_where t ~f =
  let found = ref None in
  let i = ref 0 in
  while !found = None && !i < t.size do
    if f t.data.(!i) then found := Some !i else incr i
  done;
  match !found with
  | None -> None
  | Some i ->
      let x = t.data.(i) in
      t.size <- t.size - 1;
      if t.size = 0 then t.data <- [||]
      else begin
        if i < t.size then begin
          t.data.(i) <- t.data.(t.size);
          sift_down t i;
          sift_up t i
        end;
        (* Release the vacated slot for the GC (see [pop]). *)
        t.data.(t.size) <- t.data.(0)
      end;
      Some x

let to_list_unordered t = Array.to_list (Array.sub t.data 0 t.size)
