(** The implicit structural conformance checker — Figure 2 of the paper.

    [check t ~actual ~interest] decides whether instances of [actual] (the
    received object's type, the paper's T') can safely be used where
    [interest] (the variable's type, T) is expected, and when they can,
    produces the {!Mapping.t} a dynamic proxy needs.

    Rule (vi): [actual] implicitly structurally conforms to [interest] iff
    they are {e equal} (same GUID), {e equivalent} (same structure),
    [actual] {e explicitly} conforms (declared subtyping reachable through
    the description graph), or every aspect holds:
    {ul
    {- (i) names conform — case-insensitive Levenshtein distance within the
       configured bound (0 in the paper), optionally wildcards;}
    {- (ii) every field of [interest] is matched by a field of [actual]
       with a conformant name and an {e invariant} (mutually conformant)
       type;}
    {- (iii) supertypes — [actual]'s superclass conforms to [interest]'s,
       and every interface of [interest] is matched by one of [actual]'s;}
    {- (iv) every method of [interest] is matched by a method of [actual]:
       equal modifiers, conformant name, equal arity, covariant return and
       contravariant arguments {e up to a permutation} of the argument
       positions;}
    {- (v) constructors — like methods, without names and returns.}}

    Recursion through field/parameter/return types is co-inductive: a pair
    of types already under test is assumed conformant, so recursive types
    (e.g. [Person.spouse : Person]) terminate.

    The published rule text reads naturally for the direction of (2) in
    rule (iv) either way; we implement the type-safe reading (covariant
    returns, contravariant arguments), which matches the paper's stated
    goal that weakening the rules "breaks the type safety". *)

type failure = { context : string; message : string }
(** One reason a check failed; [context] names the pair/member being
    compared when the failure was recorded. *)

val pp_failure : Format.formatter -> failure -> unit

type verdict =
  | Conformant of Mapping.t
  | Not_conformant of failure list  (** Most specific failures first. *)

val verdict_ok : verdict -> bool

val pp_verdict : Format.formatter -> verdict -> unit
(** Human-readable rendering: the full mapping (methods and constructor
    witnesses) on success, every recorded failure otherwise. *)

type t
(** A checker: configuration + description resolver + bounded result
    cache with keyed invalidation. *)

val create : ?config:Config.t -> ?cache_capacity:int ->
  resolver:Pti_typedesc.Type_description.resolver -> unit -> t
(** [config] defaults to {!Config.strict}; [cache_capacity] bounds the
    verdict cache (LRU, default 2048 entries). *)

val config : t -> Config.t

val check : t -> actual:Pti_typedesc.Type_description.t ->
  interest:Pti_typedesc.Type_description.t -> verdict

val conforms : t -> actual:Pti_typedesc.Type_description.t ->
  interest:Pti_typedesc.Type_description.t -> bool

val check_ty : t -> actual:Pti_cts.Ty.t -> interest:Pti_cts.Ty.t -> bool
(** Conformance lifted to type references (primitives compare by equality,
    arrays recurse, named types resolve and run the full check). *)

val explicit_conforms : t -> actual:Pti_typedesc.Type_description.t ->
  interest:Pti_typedesc.Type_description.t -> bool
(** Just the explicit-subtyping short-circuit, exposed for tests. *)

val names_conform : t -> interest_name:string -> string -> bool
(** Just the name rule (i), exposed for tests and the E6 sweep. *)

(** {1 Binding probes}

    The matching machinery of rules (iv) and (v), exposed so static
    analysis ([pti lint]) reports exactly what the runtime binder would
    do — a hazard flagged by lint is a hazard the proxy would act on. *)

val viable_methods : t -> actual:Pti_typedesc.Type_description.t ->
  interest:Pti_typedesc.Type_description.method_desc ->
  (Pti_typedesc.Type_description.method_desc * int array) list
(** Every method of [actual] usable as the interest signature under the
    checker's configuration (conformant name, equal arity and modifiers,
    covariant return, permutable arguments), with the argument permutation
    that makes it fit. Two or more entries means the binder's choice is
    policy-dependent (ambiguous). *)

val viable_ctors : t -> actual:Pti_typedesc.Type_description.t ->
  interest:Pti_typedesc.Type_description.ctor_desc ->
  (Pti_typedesc.Type_description.ctor_desc * int array) list
(** Rule (v) analogue of {!viable_methods}. *)

val permutation : t -> interest_params:Pti_cts.Ty.t list ->
  actual_params:Pti_cts.Ty.t list -> int array option
(** [find_permutation] itself: a bijection sending each actual parameter
    position to a conformant caller argument position, identity-first.
    [None] when arities differ or no assignment exists. *)

(** {1 Instrumentation} *)

type stats = {
  checks : int;  (** Top-level [check] calls. *)
  pair_checks : int;  (** Type-pair evaluations including recursion. *)
  cache_hits : int;  (** Verdict-cache lookups answered, any depth. *)
  cache_misses : int;  (** Verdict-cache lookups that came back empty. *)
  cache_evictions : int;  (** Entries displaced by capacity pressure. *)
  cache_size : int;
  cache_capacity : int;
  resolver_misses : int;  (** Failed description lookups. *)
  top_hits : int;  (** Top-level pairs answered from the cache. *)
  top_computes : int;  (** Top-level pairs computed from scratch. The
      reuse rate of repeated checks is
      [top_hits / (top_hits + top_computes)]. *)
  invalidated : int;  (** Entries dropped by {!note_new_type}. *)
}

val stats : t -> stats
val cache_counters : t -> Pti_obs.Lru.counters

val reuse_rate : t -> float
(** [top_hits / (top_hits + top_computes)] — the fraction of top-level
    checks answered from the verdict cache ([0.] before any check). The
    scale bench reports this as the population-scale cache-reuse curve. *)

val note_new_type : ?witness:Pti_util.Guid.t -> t -> string -> int
(** [note_new_type t name]: a description for [name] just became
    resolvable. Invalidates exactly the cached verdicts whose computation
    asked the resolver for [name] (hit or miss) — in particular verdicts
    that failed because [name] was missing — and returns how many were
    dropped. Verdicts for unrelated pairs survive, unlike {!clear_cache}.

    [witness] is the GUID of the description [name] now resolves to and
    makes the invalidation version-aware: verdicts whose computation
    resolved [name] to {e exactly this} description are statements about
    unchanged bytes and survive, while verdicts that saw a different
    version (or failed on the miss) are dropped. Without [witness] every
    verdict that resolved [name] at all is dropped — the safe
    pre-evolution behavior. A v2 publish therefore never poisons cached
    v1 verdicts (stale resolutions go) and never over-drops them
    (same-witness resolutions stay). *)

val clear_cache : t -> unit
(** Drop every cached verdict (the sledgehammer; prefer
    {!note_new_type}). Counters survive. *)
