open Pti_cts
module Td = Pti_typedesc.Type_description
module Lev = Pti_util.Levenshtein
module Guid = Pti_util.Guid
module S = Pti_util.Strutil
module Lru = Pti_obs.Lru

type failure = { context : string; message : string }

let pp_failure ppf f = Format.fprintf ppf "[%s] %s" f.context f.message

type verdict = Conformant of Mapping.t | Not_conformant of failure list

let verdict_ok = function Conformant _ -> true | Not_conformant _ -> false

let pp_verdict ppf = function
  | Conformant m ->
      Format.fprintf ppf "@[<v>CONFORMANT@,%a" Mapping.pp m;
      List.iter
        (fun (cm : Mapping.ctor_map) ->
          Format.fprintf ppf "  ctor/%d perm=[%s]@," cm.Mapping.cm_arity
            (String.concat ";"
               (List.map string_of_int (Array.to_list cm.Mapping.cm_perm))))
        m.Mapping.ctors;
      Format.fprintf ppf "@]"
  | Not_conformant fs ->
      Format.fprintf ppf "@[<v>NOT CONFORMANT@,";
      List.iter (fun f -> Format.fprintf ppf "  %a@," pp_failure f) fs;
      Format.fprintf ppf "@]"

type stats_mut = {
  mutable m_checks : int;
  mutable m_pair_checks : int;
  mutable m_resolver_misses : int;
  mutable m_top_hits : int;
  mutable m_top_computes : int;
  mutable m_invalidated : int;
}

type stats = {
  checks : int;
  pair_checks : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_size : int;
  cache_capacity : int;
  resolver_misses : int;
  top_hits : int;
  top_computes : int;
  invalidated : int;
}

(* A cached verdict carries the dependencies it was computed from (every
   name the resolver was asked for during the computation), so learning a
   new type can invalidate exactly the entries that mentioned it — keyed
   invalidation instead of clearing the cache.

   Each dependency is {e witnessed}: a successful resolution records the
   GUID of the description it returned, a miss records a miss marker.
   Version-aware invalidation falls out: when [name] is (re)announced
   with GUID [g], verdicts that resolved [name] to that same [g] are
   statements about bytes that have not changed and survive, while
   verdicts that saw a different version — or failed on the miss — are
   dropped. Dependency keys encode the witness as
   ["<lowercased-name>\x00<guid>"] (miss marker ["?"]). *)
type entry = { e_verdict : verdict; e_deps : string list }

let dep_sep = '\x00'
let dep_miss name = Printf.sprintf "%s%c?" (String.lowercase_ascii name) dep_sep

let dep_witnessed name guid =
  Printf.sprintf "%s%c%s"
    (String.lowercase_ascii name)
    dep_sep (Guid.to_string guid)

let dep_prefix name = Printf.sprintf "%s%c" (String.lowercase_ascii name) dep_sep

let dep_has_prefix ~prefix key =
  String.length key >= String.length prefix
  && String.equal (String.sub key 0 (String.length prefix)) prefix

type t = {
  cfg : Config.t;
  resolve : Td.resolver;
  cache : entry Lru.Str.t;
  (* lowercased type name -> set of cache keys whose entry depends on it *)
  dep_index : (string, (string, unit) Hashtbl.t) Hashtbl.t;
  (* dependency-name accumulator of the in-flight top-level computation *)
  mutable cur_deps : (string, unit) Hashtbl.t option;
  st : stats_mut;
}

let default_cache_capacity = 2048

let unindex_deps dep_index key deps =
  List.iter
    (fun dep ->
      match Hashtbl.find_opt dep_index dep with
      | None -> ()
      | Some keys ->
          Hashtbl.remove keys key;
          if Hashtbl.length keys = 0 then Hashtbl.remove dep_index dep)
    deps

let create ?(config = Config.strict)
    ?(cache_capacity = default_cache_capacity) ~resolver () =
  let dep_index = Hashtbl.create 64 in
  {
    cfg = config;
    resolve = resolver;
    cache =
      Lru.Str.create ~capacity:cache_capacity
        ~on_evict:(fun key e -> unindex_deps dep_index key e.e_deps)
        ();
    dep_index;
    cur_deps = None;
    st =
      { m_checks = 0; m_pair_checks = 0; m_resolver_misses = 0;
        m_top_hits = 0; m_top_computes = 0; m_invalidated = 0 };
  }

let config t = t.cfg

let stats t =
  let c = Lru.Str.counters t.cache in
  {
    checks = t.st.m_checks;
    pair_checks = t.st.m_pair_checks;
    cache_hits = c.Lru.hits;
    cache_misses = c.Lru.misses;
    cache_evictions = c.Lru.evictions;
    cache_size = Lru.Str.length t.cache;
    cache_capacity = Lru.Str.capacity t.cache;
    resolver_misses = t.st.m_resolver_misses;
    top_hits = t.st.m_top_hits;
    top_computes = t.st.m_top_computes;
    invalidated = t.st.m_invalidated;
  }

let cache_counters t = Lru.Str.counters t.cache

let reuse_rate t =
  (* The paper's headline cost lever at population scale: what fraction
     of top-level checks the verdict cache answered outright. *)
  let total = t.st.m_top_hits + t.st.m_top_computes in
  if total = 0 then 0.
  else float_of_int t.st.m_top_hits /. float_of_int total

let clear_cache t =
  Lru.Str.clear t.cache;
  Hashtbl.reset t.dep_index

let note_new_type ?witness t name =
  let prefix = dep_prefix name in
  let keep =
    (* The arriving description's GUID: a dependency that witnessed
       exactly these bytes is still valid and must not be dropped. *)
    match witness with Some g -> Some (dep_witnessed name g) | None -> None
  in
  let stale_deps =
    Hashtbl.fold
      (fun dep _ acc ->
        if
          dep_has_prefix ~prefix dep
          && not (Option.equal String.equal keep (Some dep))
        then dep :: acc
        else acc)
      t.dep_index []
  in
  match stale_deps with
  | [] -> 0
  | _ ->
      let doomed = Hashtbl.create 16 in
      List.iter
        (fun dep ->
          match Hashtbl.find_opt t.dep_index dep with
          | None -> ()
          | Some keys -> Hashtbl.iter (fun k () -> Hashtbl.replace doomed k ()) keys)
        stale_deps;
      let n = Lru.Str.invalidate_where t.cache (Hashtbl.mem doomed) in
      (* on_evict already pruned the per-dep key sets entry by entry;
         drop any now-empty dep rows. *)
      List.iter
        (fun dep ->
          match Hashtbl.find_opt t.dep_index dep with
          | Some keys when Hashtbl.length keys = 0 ->
              Hashtbl.remove t.dep_index dep
          | _ -> ())
        stale_deps;
      t.st.m_invalidated <- t.st.m_invalidated + n;
      n

(* ---------------------------------------------------------------- *)
(* Rule (i): names                                                    *)
(* ---------------------------------------------------------------- *)

let simple_name qname =
  match List.rev (S.split_on '.' qname) with
  | last :: _ -> last
  | [] -> qname

let names_conform_raw cfg ~interest_name actual_name =
  let i, a =
    if cfg.Config.compare_namespaces then interest_name, actual_name
    else simple_name interest_name, simple_name actual_name
  in
  if
    cfg.Config.allow_wildcards
    && (String.contains i '*' || String.contains i '?')
  then Lev.wildcard_match ~pattern:i a
  else Lev.within ~limit:cfg.Config.name_distance i a

let names_conform t ~interest_name actual =
  names_conform_raw t.cfg ~interest_name actual

(* ---------------------------------------------------------------- *)
(* Identity keys and resolution                                       *)
(* ---------------------------------------------------------------- *)

let id_of (d : Td.t) = Guid.to_string d.Td.ty_guid

let pair_key t (actual : Td.t) (interest : Td.t) =
  Printf.sprintf "%s<=%s|%s" (id_of actual) (id_of interest)
    (Config.key t.cfg)

let note_dep_key t key =
  match t.cur_deps with
  | None -> ()
  | Some deps -> Hashtbl.replace deps key ()

let resolve t name =
  (* Recorded whether the lookup hits or misses: a verdict that failed on
     a missing description must be re-examined when that type arrives,
     while a hit witnesses the GUID of the description it actually saw. *)
  match t.resolve name with
  | Some d ->
      note_dep_key t (dep_witnessed name d.Td.ty_guid);
      Some d
  | None ->
      note_dep_key t (dep_miss name);
      t.st.m_resolver_misses <- t.st.m_resolver_misses + 1;
      None

(* Explicit conformance: [interest] is reachable from [actual] through the
   declared supertype/interface graph (by GUID or, failing that, by equal
   qualified name). *)
let explicit_conforms_desc t (actual : Td.t) (interest : Td.t) =
  let target_guid = interest.Td.ty_guid in
  let target_name = Td.qualified_name interest in
  let seen = Hashtbl.create 8 in
  let rec reachable (d : Td.t) =
    let matches =
      Guid.equal d.Td.ty_guid target_guid
      || S.equal_ci (Td.qualified_name d) target_name
    in
    if matches then true
    else begin
      let k = String.lowercase_ascii (Td.qualified_name d) in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        let parents =
          (match d.Td.ty_super with None -> [] | Some s -> [ s ])
          @ d.Td.ty_interfaces
        in
        List.exists
          (fun name ->
            (* A name that textually matches the target counts even if the
               description cannot be fetched. *)
            S.equal_ci name target_name
            ||
            match resolve t name with
            | Some parent -> reachable parent
            | None -> false)
          parents
      end
    end
  in
  (not (Guid.equal actual.Td.ty_guid target_guid))
  && ((match actual.Td.ty_super with None -> false | Some s -> S.equal_ci s target_name)
      || List.exists (fun i -> S.equal_ci i target_name) actual.Td.ty_interfaces
      ||
      let parents =
        (match actual.Td.ty_super with None -> [] | Some s -> [ s ])
        @ actual.Td.ty_interfaces
      in
      List.exists
        (fun name ->
          match resolve t name with
          | Some parent -> reachable parent
          | None -> false)
        parents)

(* ---------------------------------------------------------------- *)
(* The core recursive check                                           *)
(* ---------------------------------------------------------------- *)

type assum = (string, unit) Hashtbl.t

let ok = Ok ()

let fail context fmt =
  Printf.ksprintf (fun message -> Error [ { context; message } ]) fmt

let rec conforms_desc t (assum : assum) depth (actual : Td.t)
    (interest : Td.t) : (Mapping.t, failure list) result =
  t.st.m_pair_checks <- t.st.m_pair_checks + 1;
  let ctx =
    Printf.sprintf "%s <= %s" (Td.qualified_name actual)
      (Td.qualified_name interest)
  in
  if depth > t.cfg.Config.max_depth then fail ctx "max recursion depth exceeded"
  else if Td.equals actual interest then
    Ok
      (Mapping.identity_mapping
         ~interest:(Td.qualified_name interest)
         ~actual:(Td.qualified_name actual))
  else begin
    let key = pair_key t actual interest in
    let fresh = Hashtbl.length assum = 0 in
    match Lru.Str.find t.cache key with
    | Some e ->
        if fresh then t.st.m_top_hits <- t.st.m_top_hits + 1
        else
          (* A nested hit folds the entry's dependencies into the
             enclosing computation's: the outer verdict inherits them. *)
          List.iter (note_dep_key t) e.e_deps;
        (match e.e_verdict with
        | Conformant m -> Ok m
        | Not_conformant fs -> Error fs)
    | None ->
        if Hashtbl.mem assum key then
          (* Co-inductive assumption: this pair is already under test. *)
          Ok
            (Mapping.identity_mapping
               ~interest:(Td.qualified_name interest)
               ~actual:(Td.qualified_name actual))
        else begin
          Hashtbl.add assum key ();
          (* Track resolver traffic for the top-level pair so the cached
             verdict knows which type names it depends on. *)
          let saved_deps = t.cur_deps in
          if fresh then begin
            t.st.m_top_computes <- t.st.m_top_computes + 1;
            (* The pair itself is identified by GUID in the cache key;
               only the name→description bindings the computation actually
               resolves are dependencies (recorded in [resolve]). Seeding
               the pair's own names here would make a v2 publish drop
               still-valid verdicts about v1 — the over-drop
               {!note_new_type}'s witnesses exist to prevent. *)
            t.cur_deps <- Some (Hashtbl.create 16)
          end;
          let result = conforms_desc_uncached t assum depth actual interest ctx in
          Hashtbl.remove assum key;
          (* Only cache results computed without outstanding assumptions:
             results under assumptions may depend on pairs still in flight. *)
          if fresh then begin
            let deps =
              match t.cur_deps with
              | Some h -> Hashtbl.fold (fun d () acc -> d :: acc) h []
              | None -> []
            in
            t.cur_deps <- saved_deps;
            let entry =
              {
                e_verdict =
                  (match result with
                  | Ok m -> Conformant m
                  | Error fs -> Not_conformant fs);
                e_deps = deps;
              }
            in
            Lru.Str.put t.cache key entry;
            List.iter
              (fun dep ->
                let keys =
                  match Hashtbl.find_opt t.dep_index dep with
                  | Some ks -> ks
                  | None ->
                      let ks = Hashtbl.create 4 in
                      Hashtbl.replace t.dep_index dep ks;
                      ks
                in
                Hashtbl.replace keys key ())
              deps
          end;
          result
        end
  end

and conforms_desc_uncached t assum depth actual interest ctx =
  if Td.equivalent actual interest then
    Ok
      (Mapping.identity_mapping
         ~interest:(Td.qualified_name interest)
         ~actual:(Td.qualified_name actual))
  else if explicit_conforms_desc t actual interest then
    Ok
      (Mapping.identity_mapping
         ~interest:(Td.qualified_name interest)
         ~actual:(Td.qualified_name actual))
  else begin
    (* Aspect (i): names. *)
    let interest_name = Td.qualified_name interest in
    let actual_name = Td.qualified_name actual in
    if not (names_conform_raw t.cfg ~interest_name actual_name) then
      fail ctx "name %S does not conform to %S (rule i)"
        (simple_name actual_name) (simple_name interest_name)
    else
      let ( >>= ) r f = match r with Ok () -> f () | Error e -> Error e in
      check_supertypes t assum depth actual interest ctx >>= fun () ->
      check_fields t assum depth actual interest ctx >>= fun () ->
      match check_ctors t assum depth actual interest ctx with
      | Error e -> Error e
      | Ok ctor_maps -> (
          match check_methods t assum depth actual interest ctx with
          | Error e -> Error e
          | Ok method_maps ->
              Ok
                {
                  Mapping.interest = interest_name;
                  actual = actual_name;
                  identity = false;
                  methods = method_maps;
                  ctors = ctor_maps;
                })
  end

(* Aspect (iii): supertypes. *)
and check_supertypes t assum depth actual interest ctx =
  if not t.cfg.Config.check_supertypes then ok
  else begin
    let super_ok =
      match interest.Td.ty_super, actual.Td.ty_super with
      | None, _ -> ok
      | Some si, None ->
          fail ctx "interest has superclass %s but actual has none (rule iii)"
            si
      | Some si, Some sa ->
          if S.equal_ci si sa then ok
          else (
            match resolve t si, resolve t sa with
            | Some di, Some da -> (
                match conforms_desc t assum (depth + 1) da di with
                | Ok _ -> ok
                | Error fs ->
                    Error
                      ({ context = ctx;
                         message =
                           Printf.sprintf
                             "superclass %s does not conform to %s (rule iii)"
                             sa si }
                      :: fs))
            | None, _ -> fail ctx "unresolvable supertype %S" si
            | _, None -> fail ctx "unresolvable supertype %S" sa)
    in
    match super_ok with
    | Error e -> Error e
    | Ok () ->
        (* Every interface of the interest type must be matched by one of
           the actual type's interfaces. *)
        let rec each = function
          | [] -> ok
          | iface :: rest ->
              let candidates = actual.Td.ty_interfaces in
              let matched =
                List.exists
                  (fun a ->
                    S.equal_ci a iface
                    ||
                    match resolve t iface, resolve t a with
                    | Some di, Some da -> (
                        match conforms_desc t assum (depth + 1) da di with
                        | Ok _ -> true
                        | Error _ -> false)
                    | _ -> false)
                  candidates
              in
              if matched then each rest
              else fail ctx "no interface of actual conforms to %S (rule iii)" iface
        in
        each interest.Td.ty_interfaces
  end

(* Aspect (ii): fields (invariant in the field's type). *)
and check_fields t assum depth actual interest ctx =
  if not t.cfg.Config.check_fields then ok
  else
    let rec each = function
      | [] -> ok
      | (f : Td.field_desc) :: rest ->
          let candidates =
            List.filter
              (fun (g : Td.field_desc) ->
                names_conform_raw t.cfg ~interest_name:f.Td.fd_name g.Td.fd_name
                && ((not t.cfg.Config.check_modifiers)
                   || Meta.equal_mods f.Td.fd_mods g.Td.fd_mods))
              actual.Td.ty_fields
          in
          let ty_ok (g : Td.field_desc) =
            ty_conforms t assum (depth + 1) ~actual:g.Td.fd_ty
              ~interest:f.Td.fd_ty
            && ty_conforms t assum (depth + 1) ~actual:f.Td.fd_ty
                 ~interest:g.Td.fd_ty
          in
          let matching = List.filter ty_ok candidates in
          (match matching, t.cfg.Config.ambiguity with
          | [], _ ->
              fail ctx "no field of actual matches %s : %s (rule ii)"
                f.Td.fd_name (Ty.to_string f.Td.fd_ty)
          | _ :: _ :: _, Config.Reject_ambiguous ->
              fail ctx "field %s matches ambiguously (rule ii)" f.Td.fd_name
          | _ -> each rest)
    in
    each interest.Td.ty_fields

(* Aspect (v): constructors. Returns the chosen witnesses. *)
and check_ctors t assum depth actual interest ctx =
  if not t.cfg.Config.check_ctors then Ok []
  else
    let rec each acc = function
      | [] -> Ok (List.rev acc)
      | (c : Td.ctor_desc) :: rest ->
          let arity = List.length c.Td.cd_params in
          let interest_params = List.map (fun p -> p.Td.pd_ty) c.Td.cd_params in
          let with_perm = viable_ctor_matches t assum depth actual c in
          (match with_perm, t.cfg.Config.ambiguity with
          | [], _ ->
              fail ctx "no constructor of actual matches ctor/%d (rule v)" arity
          | _ :: _ :: _, Config.Reject_ambiguous ->
              fail ctx "constructor/%d matches ambiguously (rule v)" arity
          | (c', perm) :: _, _ ->
              let cm =
                {
                  Mapping.cm_arity = arity;
                  cm_perm = perm;
                  cm_param_tys = interest_params;
                  cm_actual_param_tys =
                    List.map (fun p -> p.Td.pd_ty) c'.Td.cd_params;
                }
              in
              each (cm :: acc) rest)
    in
    each [] interest.Td.ty_ctors

(* Aspect (iv): methods. Returns the chosen method maps. *)
and check_methods t assum depth actual interest ctx =
  if not t.cfg.Config.check_methods then Ok []
  else
    let rec each acc = function
      | [] -> Ok (List.rev acc)
      | (m : Td.method_desc) :: rest -> (
          match match_method t assum depth actual m ctx with
          | Ok mm -> each (mm :: acc) rest
          | Error e -> Error e)
    in
    each [] interest.Td.ty_methods

(* All methods of [actual] that could serve interest signature [m]: name
   conforms, equal arity and modifiers, covariant return, and some legal
   argument permutation (which is returned with the method). The runtime
   binder picks among exactly this set, so tools probing for ambiguity
   (pti lint) share it. *)
and viable_method_matches t assum depth (actual : Td.t) (m : Td.method_desc) =
  let arity = Td.method_arity m in
  let name_candidates =
    List.filter
      (fun (m' : Td.method_desc) ->
        names_conform_raw t.cfg ~interest_name:m.Td.md_name m'.Td.md_name
        && Td.method_arity m' = arity
        && ((not t.cfg.Config.check_modifiers)
           || Meta.equal_mods m.Td.md_mods m'.Td.md_mods))
      actual.Td.ty_methods
  in
  let interest_params = List.map (fun p -> p.Td.pd_ty) m.Td.md_params in
  List.filter_map
    (fun (m' : Td.method_desc) ->
      let actual_params = List.map (fun p -> p.Td.pd_ty) m'.Td.md_params in
      if
        not
          (ty_conforms t assum (depth + 1) ~actual:m'.Td.md_return
             ~interest:m.Td.md_return)
      then None
      else
        find_permutation t assum depth ~interest_params ~actual_params
        |> Option.map (fun perm -> (m', perm)))
    name_candidates

(* Likewise for rule (v): constructors of [actual] usable as interest
   constructor [c] — equal arity and modifiers, permutable parameters. *)
and viable_ctor_matches t assum depth (actual : Td.t) (c : Td.ctor_desc) =
  let arity = List.length c.Td.cd_params in
  let interest_params = List.map (fun p -> p.Td.pd_ty) c.Td.cd_params in
  let candidates =
    List.filter
      (fun (c' : Td.ctor_desc) ->
        List.length c'.Td.cd_params = arity
        && ((not t.cfg.Config.check_modifiers)
           || Meta.equal_mods c.Td.cd_mods c'.Td.cd_mods))
      actual.Td.ty_ctors
  in
  List.filter_map
    (fun (c' : Td.ctor_desc) ->
      find_permutation t assum depth ~interest_params
        ~actual_params:(List.map (fun p -> p.Td.pd_ty) c'.Td.cd_params)
      |> Option.map (fun perm -> (c', perm)))
    candidates

and match_method t assum depth (actual : Td.t) (m : Td.method_desc) ctx =
  let arity = Td.method_arity m in
  let interest_params = List.map (fun p -> p.Td.pd_ty) m.Td.md_params in
  let viable = viable_method_matches t assum depth actual m in
  let chosen =
    match viable, t.cfg.Config.ambiguity with
    | [], _ -> None
    | [ x ], _ -> Some x
    | _ :: _ :: _, Config.Reject_ambiguous -> None
    | x :: _, Config.First_match -> Some x
    | xs, Config.Best_score ->
        let score (m', perm) =
          Lev.similarity m.Td.md_name m'.Td.md_name
          +. (if Mapping.is_identity_perm perm then 0.5 else 0.)
        in
        let best =
          List.fold_left
            (fun acc x ->
              match acc with
              | None -> Some x
              | Some y -> if score x > score y then Some x else Some y)
            None xs
        in
        best
  in
  match chosen with
  | Some (m', perm) ->
      Ok
        {
          Mapping.mm_interest_name = m.Td.md_name;
          mm_actual_name = m'.Td.md_name;
          mm_arity = arity;
          mm_perm = perm;
          mm_interest_return = m.Td.md_return;
          mm_actual_return = m'.Td.md_return;
          mm_param_tys = interest_params;
          mm_actual_param_tys = List.map (fun p -> p.Td.pd_ty) m'.Td.md_params;
        }
  | None -> (
      match viable with
      | _ :: _ :: _ ->
          fail ctx "method %s matches ambiguously (rule iv)" (Td.signature m)
      | _ ->
          fail ctx "no method of actual matches %s (rule iv)"
            (Td.signature m))

(* Find a bijection sending each actual-parameter position [j] to a caller
   (interest) argument position [perm.(j)], such that the caller's argument
   type conforms to the actual parameter type (contravariance). Prefers the
   identity permutation; only the identity is tried when permutations are
   disabled. *)
and find_permutation t assum depth ~interest_params ~actual_params =
  let n = List.length interest_params in
  if n <> List.length actual_params then None
  else begin
    let ip = Array.of_list interest_params in
    let ap = Array.of_list actual_params in
    let arg_ok i j =
      ty_conforms t assum (depth + 1) ~actual:ip.(i) ~interest:ap.(j)
    in
    if not t.cfg.Config.consider_permutations then begin
      let all_ok = ref true in
      for j = 0 to n - 1 do
        if !all_ok then all_ok := arg_ok j j
      done;
      if !all_ok then Some (Array.init n (fun j -> j)) else None
    end
    else begin
      let used = Array.make n false in
      let perm = Array.make n (-1) in
      let rec assign j =
        if j >= n then true
        else begin
          (* Try the identity choice first for stable, readable mappings. *)
          let order =
            j :: List.filter (fun i -> i <> j) (List.init n (fun i -> i))
          in
          let rec try_order = function
            | [] -> false
            | i :: rest ->
                if (not used.(i)) && arg_ok i j then begin
                  used.(i) <- true;
                  perm.(j) <- i;
                  if assign (j + 1) then true
                  else begin
                    used.(i) <- false;
                    perm.(j) <- -1;
                    try_order rest
                  end
                end
                else try_order rest
          in
          try_order order
        end
      in
      if assign 0 then Some perm else None
    end
  end

(* Type-reference conformance. *)
and ty_conforms t assum depth ~actual ~interest =
  match actual, interest with
  | Ty.Void, Ty.Void
  | Ty.Bool, Ty.Bool
  | Ty.Int, Ty.Int
  | Ty.Float, Ty.Float
  | Ty.String, Ty.String
  | Ty.Char, Ty.Char ->
      true
  | Ty.Array a, Ty.Array i -> ty_conforms t assum depth ~actual:a ~interest:i
  | Ty.Named a, Ty.Named i ->
      S.equal_ci a i
      || (depth <= t.cfg.Config.max_depth
         &&
         match resolve t a, resolve t i with
         | Some da, Some di -> (
             match conforms_desc t assum (depth + 1) da di with
             | Ok _ -> true
             | Error _ -> false)
         | _ -> false)
  | ( ( Ty.Void | Ty.Bool | Ty.Int | Ty.Float | Ty.String | Ty.Char
      | Ty.Named _ | Ty.Array _ ),
      _ ) ->
      false

(* ---------------------------------------------------------------- *)
(* Public API                                                         *)
(* ---------------------------------------------------------------- *)

let check t ~actual ~interest =
  t.st.m_checks <- t.st.m_checks + 1;
  let assum : assum = Hashtbl.create 8 in
  match conforms_desc t assum 0 actual interest with
  | Ok m -> Conformant m
  | Error fs -> Not_conformant fs

let conforms t ~actual ~interest = verdict_ok (check t ~actual ~interest)

let check_ty t ~actual ~interest =
  let assum : assum = Hashtbl.create 8 in
  ty_conforms t assum 0 ~actual ~interest

let explicit_conforms t ~actual ~interest = explicit_conforms_desc t actual interest

let viable_methods t ~actual ~interest =
  let assum : assum = Hashtbl.create 8 in
  viable_method_matches t assum 0 actual interest

let viable_ctors t ~actual ~interest =
  let assum : assum = Hashtbl.create 8 in
  viable_ctor_matches t assum 0 actual interest

let permutation t ~interest_params ~actual_params =
  let assum : assum = Hashtbl.create 8 in
  find_permutation t assum 0 ~interest_params ~actual_params
