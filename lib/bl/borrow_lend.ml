module Peer = Pti_core.Peer
module Metrics = Pti_obs.Metrics

type lending = {
  lender : Peer.t;
  resource : Peer.remote_ref;
  capacity : int;
  mutable borrowed : int;
}

type lease = {
  lease_of : lending;
  mutable active : bool;
  released_ctr : Metrics.counter;
}

let lease_lending l = l.lease_of
let lease_active l = l.active

type borrow_error = No_conformant_resource of string list | Exhausted

let pp_borrow_error ppf = function
  | No_conformant_resource reasons ->
      Format.fprintf ppf "no conformant resource (%s)"
        (String.concat "; " reasons)
  | Exhausted -> Format.fprintf ppf "all conformant resources at capacity"

type t = {
  mutable listings : lending list;
  m_lent : Metrics.counter;
  m_borrows : Metrics.counter;
  m_borrow_failures : Metrics.counter;
  m_releases : Metrics.counter;
}

let create ?metrics () =
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  {
    listings = [];
    m_lent = Metrics.counter m "bl.lent";
    m_borrows = Metrics.counter m "bl.borrows";
    m_borrow_failures = Metrics.counter m "bl.borrow_failures";
    m_releases = Metrics.counter m "bl.releases";
  }

let lend t lender ?(capacity = 1) value =
  let resource = Peer.export lender value in
  let lending = { lender; resource; capacity; borrowed = 0 } in
  t.listings <- t.listings @ [ lending ];
  Metrics.incr t.m_lent;
  lending

let unlend t lending =
  t.listings <- List.filter (fun l -> l != lending) t.listings

let release lease =
  if lease.active then begin
    lease.active <- false;
    Metrics.incr lease.released_ctr;
    let lending = lease.lease_of in
    if lending.borrowed > 0 then lending.borrowed <- lending.borrowed - 1
  end

let borrow ?lease_ms t borrower ~interest =
  let reasons = ref [] in
  let found_conformant_full = ref false in
  let rec try_listings = function
    | [] ->
        Metrics.incr t.m_borrow_failures;
        if !found_conformant_full then Error Exhausted
        else Error (No_conformant_resource (List.rev !reasons))
    | lending :: rest -> (
        match Peer.acquire borrower lending.resource ~interest with
        | Error reason ->
            reasons :=
              Printf.sprintf "%s@%s: %s" lending.resource.Peer.rr_class
                lending.resource.Peer.rr_host reason
              :: !reasons;
            try_listings rest
        | Ok proxy ->
            if lending.borrowed >= lending.capacity then begin
              found_conformant_full := true;
              reasons :=
                Printf.sprintf "%s@%s: at capacity"
                  lending.resource.Peer.rr_class lending.resource.Peer.rr_host
                :: !reasons;
              try_listings rest
            end
            else begin
              lending.borrowed <- lending.borrowed + 1;
              Metrics.incr t.m_borrows;
              let lease =
                {
                  lease_of = lending;
                  active = true;
                  released_ctr = t.m_releases;
                }
              in
              (match lease_ms with
              | None -> ()
              | Some delay ->
                  Peer.schedule_timer borrower
                    ~info:
                      (Printf.sprintf "lease-expiry %s@%s"
                         lending.resource.Peer.rr_class
                         lending.resource.Peer.rr_host)
                    ~delay_ms:delay
                    (fun () -> release lease));
              Ok (proxy, lease)
            end)
  in
  try_listings t.listings

let return_resource _t lease = release lease

let lendings t = t.listings
