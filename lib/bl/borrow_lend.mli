(** The borrow/lend (BL) abstraction with type-conformance criteria —
    the second application sketched in §8.

    Lenders export resources (pass-by-reference); borrowers request a
    resource naming their local type of interest. A request is satisfied by
    any lent resource whose (remote) type implicitly structurally conforms
    to the interest type: the borrower receives a remote dynamic proxy and
    invokes the resource through its own vocabulary. Leases bound
    concurrent borrowers per resource and may expire on a timer (simulated
    time). *)

open Pti_cts

type t
(** A lending market over one simulated network. The directory is a plain
    in-memory table (the paper's BL work is peer-to-peer; discovery is not
    the subject here — conformance-based matching is). *)

type lending = {
  lender : Pti_core.Peer.t;
  resource : Pti_core.Peer.remote_ref;
  capacity : int;  (** Max concurrent borrowers. *)
  mutable borrowed : int;
}

type lease
(** One borrower's hold on a lending; releasing is idempotent. *)

val lease_lending : lease -> lending
val lease_active : lease -> bool

type borrow_error =
  | No_conformant_resource of string list
      (** Reasons per considered resource. *)
  | Exhausted  (** Conformant resources exist but all are at capacity. *)

val pp_borrow_error : Format.formatter -> borrow_error -> unit

val create : ?metrics:Pti_obs.Metrics.t -> unit -> t
(** With [metrics], the market reports [bl.lent], [bl.borrows],
    [bl.borrow_failures] and [bl.releases] counters in that registry
    (releases include lease expiries). *)

val lend : t -> Pti_core.Peer.t -> ?capacity:int -> Value.value -> lending
(** Export the object on the lender and list it (capacity defaults to 1).
    @raise Invalid_argument if the value is not an object. *)

val unlend : t -> lending -> unit

val borrow : ?lease_ms:float -> t -> Pti_core.Peer.t -> interest:string ->
  (Value.value * lease, borrow_error) result
(** Find the first conformant lending with free capacity; returns the
    invokable remote proxy and the lease. Drives the simulation (the
    conformance check may fetch remote type descriptions). With
    [lease_ms], the lease auto-releases that many simulated milliseconds
    later. *)

val return_resource : t -> lease -> unit
(** Release the lease (idempotent; a no-op after expiry). *)

val lendings : t -> lending list
