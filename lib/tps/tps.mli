(** Type-based publish/subscribe enhanced with type interoperability —
    the first application sketched in §8.

    In classic TPS, publishers and subscribers must agree {e a priori} on
    event types. Here a subscription names a local {e type of interest} and
    receives every published event whose type implicitly structurally
    conforms — even events whose classes the subscriber has never seen
    (their code is pulled through the optimistic protocol on first use).

    Following the peer-to-peer setting the paper builds on (its own
    borrow/lend work), the "broker" is a rendezvous peer tracking
    membership; event envelopes flow publisher-to-subscriber directly.
    Matching happens at each subscriber, so a subscriber only downloads
    code for event types it can actually consume. *)

open Pti_cts

type t
(** A pub/sub domain bound to one simulated network. *)

type subscription = {
  sub_peer : Pti_core.Peer.t;
  sub_interest : string;
  sub_id : Pti_core.Peer.interest_id;
  mutable sub_active : bool;
  mutable sub_received : (string * Value.value) list;
      (** (publisher address, event) — most recent first. *)
}

val create : ?mode:Pti_core.Peer.mode -> ?metrics:Pti_obs.Metrics.t ->
  net:Pti_core.Message.t Pti_net.Net.t -> broker:string -> unit -> t
(** Creates the broker peer at the given address. When [metrics] is given
    the domain reports [tps.published] (publish calls), [tps.fanout]
    (per-subscriber sends) and [tps.delivered] (conformant events recorded
    on a subscription) counters there, and the broker peer shares the same
    registry. *)

val broker : t -> Pti_core.Peer.t

val add_publisher : t -> Pti_core.Peer.t -> unit
(** Any peer can publish once added (the broker learns nothing about its
    types in advance — that is the point). *)

val subscribe : t -> Pti_core.Peer.t -> interest:string ->
  ?handler:(from:string -> Value.value -> unit) -> unit -> subscription
(** Registers the peer as a subscriber for events conforming to its local
    [interest] type. Events are recorded on the subscription and forwarded
    to [handler] when given. *)

val publish : t -> Pti_core.Peer.t -> Value.value -> unit
(** Fan the event out to every subscriber (self-delivery excluded).
    Matching and code download happen subscriber-side as the simulation
    runs. *)

val unsubscribe : t -> subscription -> unit
(** Stop both the fan-out to this subscriber and the local interest
    matching. Idempotent. Events already in flight on the simulated
    network may still arrive at the peer but are no longer recorded or
    handed to the handler. *)

val subscriptions : t -> subscription list
(** Active subscriptions only. *)

val deliveries : subscription -> (string * Value.value) list
(** Chronological. *)

val run : t -> unit
