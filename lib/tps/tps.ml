open Pti_cts
module Peer = Pti_core.Peer
module Net = Pti_net.Net
module Metrics = Pti_obs.Metrics

type subscription = {
  sub_peer : Peer.t;
  sub_interest : string;
  sub_id : Peer.interest_id;
  mutable sub_active : bool;
  mutable sub_received : (string * Value.value) list;
}

type t = {
  net : Pti_core.Message.t Net.t;
  broker_peer : Peer.t;
  mutable publishers : Peer.t list;
  mutable subs : subscription list;
  m_published : Metrics.counter;
  m_fanout : Metrics.counter;
  m_delivered : Metrics.counter;
}

let create ?mode ?metrics ~net ~broker () =
  let broker_peer = Peer.create ?mode ?metrics ~net broker in
  let m = match metrics with Some m -> m | None -> Peer.metrics broker_peer in
  {
    net;
    broker_peer;
    publishers = [];
    subs = [];
    m_published = Metrics.counter m "tps.published";
    m_fanout = Metrics.counter m "tps.fanout";
    m_delivered = Metrics.counter m "tps.delivered";
  }

let broker t = t.broker_peer

let add_publisher t peer =
  if
    not
      (List.exists
         (fun p -> String.equal (Peer.address p) (Peer.address peer))
         t.publishers)
  then t.publishers <- t.publishers @ [ peer ]

let subscribe t peer ~interest ?handler () =
  let sub = ref None in
  let id =
    Peer.register_interest_id peer ~interest (fun ~from value ->
        match !sub with
        | Some s when s.sub_active ->
            s.sub_received <- (from, value) :: s.sub_received;
            Metrics.incr t.m_delivered;
            (match handler with Some h -> h ~from value | None -> ())
        | Some _ | None -> ())
  in
  let s =
    { sub_peer = peer; sub_interest = interest; sub_id = id;
      sub_active = true; sub_received = [] }
  in
  sub := Some s;
  t.subs <- t.subs @ [ s ];
  s

let unsubscribe t sub =
  if sub.sub_active then begin
    sub.sub_active <- false;
    Peer.unregister_interest sub.sub_peer sub.sub_id;
    t.subs <- List.filter (fun s -> s != sub) t.subs
  end

let publish t publisher event =
  add_publisher t publisher;
  Metrics.incr t.m_published;
  let src = Peer.address publisher in
  List.iter
    (fun sub ->
      let dst = Peer.address sub.sub_peer in
      if not (String.equal dst src) then begin
        Metrics.incr t.m_fanout;
        Peer.send_value publisher ~dst event
      end)
    t.subs

let subscriptions t = t.subs
let deliveries sub = List.rev sub.sub_received
let run t = Net.run t.net
