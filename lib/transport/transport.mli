(** The pluggable transport fabric: one interface, three backends.

    A transport [t] is everything a protocol stack needs from the
    network: endpoints addressed by logical names, [send], timers/acts
    on the backend's {!Pti_net.Clock}, connection lifecycle events,
    fault-injection middleware and per-category accounting. Backends:

    - {b sim} — wraps an ['a Net.t] {e unchanged}: sends, ARQ, fault
      hooks, partitions and the model checker's [enabled]/[fire]
      scheduler hook all keep their exact semantics and {!Sim.label}s,
      so every deterministic suite behaves bit-identically whether the
      stack reaches [Net] directly or through here.
    - {b unix} — Unix-domain stream sockets, one listening socket per
      endpoint, nonblocking poll loop, reconnect-with-backoff driven by
      the same {!Arq.policy} knobs as the sim's ARQ.
    - {b tcp} — same machinery over loopback/remote TCP.

    Stream backends are polymorphic via an explicit ['a codec]; the
    peer stack supplies its [Message] binary codec. Fault hooks
    ([Net.fault_hooks]) become send-side middleware on streams, so the
    chaos vocabulary (loss, duplication, delay, corruption, down
    windows, partitions) applies to real kernel sockets too. The model
    checker stays pinned to the sim backend — only the simulator
    exposes a deterministic enabled-event set. *)

type address = string

type kind = Sim | Unix_socket | Tcp

val kind_name : kind -> string
val kind_of_string : string -> kind option
(** ["sim" | "unix" | "tcp"]. *)

type 'a codec = {
  c_encode : 'a -> string;
  c_decode : string -> ('a, string) result;
}
(** Payload <-> wire bytes, used by stream backends only (the sim moves
    values in memory and charges declared sizes). *)

type conn_event =
  | Connected of { local : address; peer : address }
  | Disconnected of { local : address; peer : address }

type 'a t
type 'a endpoint

(** {1 Construction} *)

val of_net : 'a Pti_net.Net.t -> 'a t
(** Wrap a simulated network. Cheap; the fabric holds no state of its
    own, so wrapping the same [Net.t] twice yields equivalent fabrics. *)

val create_unix :
  ?dir:string ->
  ?reliability:Pti_net.Arq.policy ->
  ?metrics:Pti_obs.Metrics.t ->
  codec:'a codec ->
  unit ->
  'a t
(** Unix-domain-socket fabric. Endpoints bind [<dir>/<addr>.sock]
    (default: a per-user directory under the system temp dir).
    [reliability] tunes reconnect backoff, default {!Pti_net.Arq.default}. *)

val create_tcp :
  ?host:string ->
  ?reliability:Pti_net.Arq.policy ->
  ?metrics:Pti_obs.Metrics.t ->
  codec:'a codec ->
  unit ->
  'a t
(** TCP fabric; endpoints bind [host] (default 127.0.0.1) on an
    ephemeral port unless {!set_bind} pins one. *)

(** {1 Introspection} *)

val kind : _ t -> kind
val clock : _ t -> Pti_net.Clock.t
val now_ms : _ t -> float
val stats : _ t -> Pti_net.Stats.t
(** Sim: the wrapped net's stats (bytes charged by declared size).
    Streams: the fabric's own stats — bytes charged by actual framed
    wire size at send, latencies recorded on delivery from the wire
    stamp. *)

val sim_net : 'a t -> 'a Pti_net.Net.t option
(** The wrapped network on the sim backend; [None] on streams. Escape
    hatch for sim-only machinery (trace attach, the mc scheduler hook). *)

(** {1 Endpoints and addressing} *)

val add_endpoint :
  'a t -> address -> handler:(src:address -> 'a -> unit) -> 'a endpoint
(** Register a logical address. Sim: [Net.add_host]. Streams: binds and
    listens. @raise Invalid_argument on a duplicate address. *)

val remove_endpoint : _ t -> address -> unit
(** Crash the endpoint: sim [Net.remove_host]; streams close the
    listener and every connection it holds. *)

val endpoint_address : _ endpoint -> address

val register_remote : _ t -> address -> string -> unit
(** [register_remote t addr spec] teaches a stream fabric how to dial
    logical [addr]: a socket path (unix) or ["host:port"] (tcp). Only
    dialers need this — an accepted connection identifies its peer via
    the hello frame and replies reuse it. No-op on sim. *)

val set_bind : _ t -> address -> string -> unit
(** Pin where a future {!add_endpoint} for [addr] will listen (socket
    path / ["host:port"]) instead of the default. No-op on sim. *)

val set_bind_fd : _ t -> address -> Unix.file_descr -> unit
(** Like {!set_bind} with an already-listening descriptor — lets a
    parent process open the listener, fork, and have the child adopt it
    (no port race). No-op on sim. *)

val listen_spec : _ t -> address -> string option
(** Where a local endpoint actually listens, in {!register_remote}
    form — hand this to the process that will dial us. [None] on sim
    or for unknown addresses. *)

(** {1 Data path} *)

val send :
  'a endpoint ->
  ?info:string ->
  dst:address ->
  category:Pti_net.Stats.category ->
  size:int ->
  'a ->
  unit
(** Sim: exactly [Net.send] (same labels, same ARQ, same accounting).
    Streams: frame, apply fault middleware, write (connecting first if
    needed, buffering while a dial is in flight).
    @raise Invalid_argument for an unresolvable destination. *)

val connect : _ endpoint -> address -> unit
(** Eagerly establish a stream connection (normally implicit in the
    first send). No-op on sim. *)

val disconnect : _ endpoint -> address -> unit
(** Flush and close the connection to [dst]. No-op on sim. *)

val on_conn_event : _ t -> (conn_event -> unit) -> unit
(** Subscribe to stream connection lifecycle events (never fires on
    sim). Callbacks run inside the poll loop. *)

(** {1 Timers and actions}

    On sim these produce the exact [Sim.Timer]/[Sim.Act] labels the
    model checker keys on; on streams they land in the monotonic clock
    and fire from the poll loop. *)

val timer :
  _ t -> owner:address -> info:string -> delay_ms:float -> (unit -> unit) -> unit

val timer_cancellable :
  _ t ->
  owner:address ->
  info:string ->
  delay_ms:float ->
  (unit -> unit) ->
  unit ->
  unit
(** Returns the cancel thunk. *)

val act :
  _ t -> owner:address -> info:string -> delay_ms:float -> (unit -> unit) -> unit

(** {1 Driving} *)

val step : _ t -> bool
(** Sim: [Sim.step]. Streams: one short poll; [true] if any I/O or
    timer fired. *)

val poll : _ t -> timeout_ms:float -> bool
(** Streams: wait up to [timeout_ms] for I/O (bounded by the next timer
    deadline), service it, fire due timers. Sim: [Sim.step] (the
    timeout is meaningless in logical time). *)

val run : _ t -> unit
(** Sim: run to quiescence. Streams: poll until briefly idle —
    heuristic; prefer {!drive_until}. *)

val drive_until : _ t -> ?deadline_ms:float -> (unit -> bool) -> bool
(** Drive the fabric until the predicate holds. Sim: steps until the
    predicate holds or the event queue drains ([deadline_ms] is a
    simulated-clock bound). Streams: polls until the predicate holds or
    the monotonic clock passes [deadline_ms] (default: 30 s from now).
    Returns the predicate's final value. *)

(** {1 Faults, partitions} *)

val set_fault_hooks : 'a t -> 'a Pti_net.Net.fault_hooks option -> unit
(** Sim: [Net.set_fault_hooks]. Streams: the same record applied as
    send-side middleware ([fh_down] also screens arrivals, so a window
    opening mid-flight kills frames already in kernel buffers). *)

val set_integrity : 'a t -> ('a -> bool) option -> unit
val partition : _ t -> address -> address -> unit
val heal : _ t -> address -> address -> unit

(** {1 Accounting} *)

val dropped_messages : _ t -> int
val lost_messages : _ t -> int
(** Sim: ARQ gave up. Streams: frames abandoned after reconnect
    retries were exhausted. *)

val retransmissions : _ t -> int
(** Sim: ARQ retries. Streams: reconnect attempts. *)

val injected_drops : _ t -> int
val injected_duplicates : _ t -> int
val corrupted_frames : _ t -> int
val integrity_drops : _ t -> int
(** Streams also count undecodable frames (wire damage detected by the
    codec) here. *)

val received_bytes : _ t -> Pti_net.Stats.category -> int
(** Stream receive-side accounting (actual framed bytes); 0 on sim —
    the sim's single [Stats.t] already sees both directions. *)

val total_received_bytes : _ t -> int

val close : _ t -> unit
(** Streams: flush briefly, close every fd, unlink unix sockets.
    No-op on sim. Idempotent. *)
