(* Socket-backed transport fabric: Unix-domain and TCP byte streams.

   One [t] is a process's view of the network for one family: a set of
   local endpoints (each with a listening socket), the connections they
   hold, and a monotonic [Clock] whose timers fire from the poll loop.
   Everything is nonblocking and select-driven; nothing spawns threads.

   Wire format: each message is a [Framing] length-prefixed frame whose
   payload is either a hello ([0x48] + sender address, the first frame
   on every dialed connection, so the acceptor learns the dialer's
   logical address and replies can reuse the inbound connection — only
   dialers ever need the peer to be resolvable) or data ([0x44] +
   category byte + f64 wall-clock send stamp + codec payload). The
   stamp is absolute wall milliseconds, not fabric-relative, so
   cross-process latency measurement works without clock negotiation
   (both ends sit on the same machine's clock).

   Reliability: TCP/Unix streams do not lose frames, so there is no
   per-message ARQ; the failure mode is the connection, and the ARQ
   policy knobs drive reconnect-with-backoff instead — a failed dial
   retries on an exponential [Arq.backoff_ms] schedule until
   [max_retries] is exhausted, with frames buffered while dialing and
   counted lost when the link is abandoned.

   Fault injection: the same [Net.fault_hooks] record the sim honors is
   applied here as send-side middleware (drop / duplicate / delay /
   corrupt / down), and [set_integrity] screens decoded values on
   arrival — so the chaos harness's vocabulary works over real kernel
   sockets. Partitions are a filter checked at send and at dispatch;
   the file descriptors stay open, the bytes stop. *)

module Splitmix = Pti_util.Splitmix
module Framing = Pti_serial.Framing
module W = Pti_serial.Bytes_io.Writer
module R = Pti_serial.Bytes_io.Reader
module Net = Pti_net.Net
module Arq = Pti_net.Arq
module Clock = Pti_net.Clock
module Stats = Pti_net.Stats

type address = string

type 'a codec = {
  c_encode : 'a -> string;
  c_decode : string -> ('a, string) result;
}

type family = Unix_socket | Tcp

type conn_event =
  | Connected of { local : address; peer : address }
  | Disconnected of { local : address; peer : address }

let wall_ms () = Unix.gettimeofday () *. 1000.

type conn = {
  fd : Unix.file_descr;
  cn_local : address;
  mutable cn_peer : address option;  (* None until the hello arrives *)
  cn_dec : Framing.Decoder.t;
  cn_out : string Queue.t;
  mutable cn_off : int;  (* partial-write offset into the queue head *)
  mutable cn_alive : bool;
}

type pending = {
  pd_frames : (Stats.category * string) Queue.t;
  mutable pd_attempt : int;
  mutable pd_timer : bool;  (* a reconnect timer is armed *)
}

type bind_spec = Bind_spec of string | Bind_fd of Unix.file_descr

type 'a t = {
  family : family;
  mutable codec : 'a codec;
  clock : Clock.t;
  stats : Stats.t;
  policy : Arq.policy;
  unix_dir : string;  (* socket directory (unix family) *)
  tcp_host : string;  (* bind/dial host (tcp family) *)
  endpoints : (address, 'a endpoint) Hashtbl.t;
  mutable conns : conn list;
  remotes : (address, string) Hashtbl.t;  (* logical addr -> dial spec *)
  binds : (address, bind_spec) Hashtbl.t;  (* pre-registered listeners *)
  pendings : (address * address, pending) Hashtbl.t;
  partitions : (string, unit) Hashtbl.t;
  mutable faults : 'a Net.fault_hooks option;
  mutable integrity : ('a -> bool) option;
  mutable listeners : (conn_event -> unit) list;
  rx_bytes : int array;  (* receive-side accounting, by category index *)
  rx_messages : int array;
  mutable dropped : int;
  mutable lost : int;
  mutable reconnects : int;
  mutable injected_drops : int;
  mutable injected_duplicates : int;
  mutable corrupted_frames : int;
  mutable integrity_drops : int;
  mutable closed : bool;
}

and 'a endpoint = {
  ep_addr : address;
  ep_handler : src:address -> 'a -> unit;
  ep_listen : Unix.file_descr;
  ep_spec : string;  (* what a dialer would use to reach this endpoint *)
  ep_owner : 'a t;
}

let ncat = List.length Stats.all_categories
let link_key a b = if a <= b then a ^ "|" ^ b else b ^ "|" ^ a

(* A burst write into a half-closed socket must surface as EPIPE, not
   kill the process. Global and idempotent. *)
let ignore_sigpipe =
  lazy (if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore)

let create ~family ?(policy = Arq.default) ?(unix_dir = "") ?(tcp_host = "127.0.0.1")
    ?metrics () =
  Lazy.force ignore_sigpipe;
  let unix_dir =
    if unix_dir <> "" then unix_dir
    else Filename.concat (Filename.get_temp_dir_name ()) "pti-sockets"
  in
  {
    family;
    codec =
      (* installed by the facade right after create; never used before *)
      { c_encode = (fun _ -> assert false); c_decode = (fun _ -> assert false) };
    clock = Clock.monotonic ~now:wall_ms ();
    stats = Stats.create ?metrics ();
    policy;
    unix_dir;
    tcp_host;
    endpoints = Hashtbl.create 8;
    conns = [];
    remotes = Hashtbl.create 8;
    binds = Hashtbl.create 4;
    pendings = Hashtbl.create 8;
    partitions = Hashtbl.create 4;
    faults = None;
    integrity = None;
    listeners = [];
    rx_bytes = Array.make ncat 0;
    rx_messages = Array.make ncat 0;
    dropped = 0;
    lost = 0;
    reconnects = 0;
    injected_drops = 0;
    injected_duplicates = 0;
    corrupted_frames = 0;
    integrity_drops = 0;
    closed = false;
  }

let set_codec t codec = t.codec <- codec

let emit t ev = List.iter (fun f -> f ev) (List.rev t.listeners)
let on_conn_event t f = t.listeners <- f :: t.listeners

(* ---- address resolution ---------------------------------------------- *)

let sanitize addr =
  String.map (fun c -> if c = '/' || c = '\\' || c = ':' then '_' else c) addr

let unix_path t addr = Filename.concat t.unix_dir (sanitize addr ^ ".sock")

let parse_tcp_spec spec =
  match String.rindex_opt spec ':' with
  | None -> None
  | Some i ->
      let host = String.sub spec 0 i in
      let port = String.sub spec (i + 1) (String.length spec - i - 1) in
      (match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 ->
          Some ((if host = "" then "127.0.0.1" else host), p)
      | _ -> None)

let sockaddr_of_spec t spec =
  match t.family with
  | Unix_socket -> Some (Unix.ADDR_UNIX spec)
  | Tcp -> (
      match parse_tcp_spec spec with
      | None -> None
      | Some (host, port) ->
          (try
             let ip = Unix.inet_addr_of_string host in
             Some (Unix.ADDR_INET (ip, port))
           with _ -> (
             match Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
             | { Unix.ai_addr; _ } :: _ -> Some ai_addr
             | [] -> None)))

let spec_of_sockaddr = function
  | Unix.ADDR_UNIX p -> p
  | Unix.ADDR_INET (ip, port) ->
      Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port

let register_remote t addr spec = Hashtbl.replace t.remotes addr spec
let set_bind t addr spec = Hashtbl.replace t.binds addr (Bind_spec spec)
let set_bind_fd t addr fd = Hashtbl.replace t.binds addr (Bind_fd fd)

let resolve t addr =
  match Hashtbl.find_opt t.endpoints addr with
  | Some ep -> Some ep.ep_spec
  | None -> Hashtbl.find_opt t.remotes addr

(* ---- endpoints -------------------------------------------------------- *)

let socket_domain t =
  match t.family with Unix_socket -> Unix.PF_UNIX | Tcp -> Unix.PF_INET

let ensure_dir d = try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let make_listener t addr =
  match Hashtbl.find_opt t.binds addr with
  | Some (Bind_fd fd) -> fd  (* pre-opened (inherited across fork) *)
  | other ->
      let sockaddr =
        match (other, t.family) with
        | Some (Bind_fd _), _ -> assert false  (* handled above *)
        | Some (Bind_spec spec), _ -> (
            match sockaddr_of_spec t spec with
            | Some sa -> sa
            | None -> invalid_arg (Printf.sprintf "bad bind spec %S" spec))
        | None, Unix_socket ->
            ensure_dir t.unix_dir;
            let path = unix_path t addr in
            (try Unix.unlink path with Unix.Unix_error _ -> ());
            Unix.ADDR_UNIX path
        | None, Tcp ->
            Unix.ADDR_INET (Unix.inet_addr_of_string t.tcp_host, 0)
      in
      let fd = Unix.socket (socket_domain t) Unix.SOCK_STREAM 0 in
      (match t.family with
      | Tcp -> Unix.setsockopt fd Unix.SO_REUSEADDR true
      | Unix_socket -> ());
      Unix.bind fd sockaddr;
      Unix.listen fd 16;
      fd

let add_endpoint t addr ~handler =
  if Hashtbl.mem t.endpoints addr then
    invalid_arg (Printf.sprintf "Transport.add_endpoint: duplicate address %S" addr);
  let fd = make_listener t addr in
  Unix.set_nonblock fd;
  let spec = spec_of_sockaddr (Unix.getsockname fd) in
  let ep = { ep_addr = addr; ep_handler = handler; ep_listen = fd; ep_spec = spec; ep_owner = t } in
  Hashtbl.replace t.endpoints addr ep;
  ep

let listen_spec t addr =
  Option.map (fun ep -> ep.ep_spec) (Hashtbl.find_opt t.endpoints addr)

(* ---- connections ------------------------------------------------------ *)

let hello_frame addr =
  let w = W.create () in
  W.u8 w 0x48;
  W.raw w addr;
  Framing.encode (W.contents w)

let data_frame t ~category payload =
  let w = W.create ~initial:(String.length payload + 16) () in
  W.u8 w 0x44;
  W.u8 w (Stats.index category);
  W.f64 w (wall_ms ());
  W.raw w payload;
  ignore t;
  Framing.encode (W.contents w)

let find_conn t ~local ~peer =
  List.find_opt
    (fun c -> c.cn_alive && c.cn_local = local && c.cn_peer = Some peer)
    t.conns

let kill_conn t c =
  if c.cn_alive then begin
    c.cn_alive <- false;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    t.conns <- List.filter (fun c' -> c' != c) t.conns;
    match c.cn_peer with
    | Some peer -> emit t (Disconnected { local = c.cn_local; peer })
    | None -> ()
  end

let enqueue c frame = Queue.push frame c.cn_out

let flush_conn t c =
  try
    while c.cn_alive && not (Queue.is_empty c.cn_out) do
      let head = Queue.peek c.cn_out in
      let n =
        Unix.write_substring c.fd head c.cn_off (String.length head - c.cn_off)
      in
      c.cn_off <- c.cn_off + n;
      if c.cn_off >= String.length head then begin
        ignore (Queue.pop c.cn_out);
        c.cn_off <- 0
      end
    done
  with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | Unix.Unix_error _ -> kill_conn t c

let pending_for t ~src ~dst =
  match Hashtbl.find_opt t.pendings (src, dst) with
  | Some p -> p
  | None ->
      let p = { pd_frames = Queue.create (); pd_attempt = 0; pd_timer = false } in
      Hashtbl.replace t.pendings (src, dst) p;
      p

(* Dial [dst] from [src]: blocking connect (instant or refused on
   loopback), then nonblocking forever after. On success the hello goes
   out first, then everything buffered while we were dialing. *)
let rec try_dial t ~src ~dst =
  if t.closed then ()
  else
    let p = pending_for t ~src ~dst in
    if p.pd_timer then ()
      (* A backoff timer owns the retry: sends arriving meanwhile just
         queue, they must not burn through the attempt budget. *)
    else
      match find_conn t ~local:src ~peer:dst with
    | Some c ->
        Queue.iter (fun (_, f) -> enqueue c f) p.pd_frames;
        Queue.clear p.pd_frames;
        flush_conn t c
    | None -> (
        match resolve t dst with
        | None ->
            invalid_arg
              (Printf.sprintf "Transport.send: unknown host %S (no endpoint, no registered remote)" dst)
        | Some spec -> (
            match sockaddr_of_spec t spec with
            | None -> invalid_arg (Printf.sprintf "bad dial spec %S for %S" spec dst)
            | Some sa -> (
                match
                  let fd = Unix.socket (socket_domain t) Unix.SOCK_STREAM 0 in
                  (try Unix.connect fd sa
                   with e ->
                     (try Unix.close fd with Unix.Unix_error _ -> ());
                     raise e);
                  fd
                with
                | fd ->
                    Unix.set_nonblock fd;
                    let c =
                      {
                        fd;
                        cn_local = src;
                        cn_peer = Some dst;
                        cn_dec = Framing.Decoder.create ();
                        cn_out = Queue.create ();
                        cn_off = 0;
                        cn_alive = true;
                      }
                    in
                    t.conns <- c :: t.conns;
                    enqueue c (hello_frame src);
                    Queue.iter (fun (_, f) -> enqueue c f) p.pd_frames;
                    Queue.clear p.pd_frames;
                    p.pd_attempt <- 0;
                    emit t (Connected { local = src; peer = dst });
                    flush_conn t c
                | exception Unix.Unix_error _ ->
                    let attempt = p.pd_attempt in
                    p.pd_attempt <- attempt + 1;
                    if Arq.give_up t.policy ~attempt:(attempt + 1) then begin
                      (* Link abandoned: everything buffered for it is lost. *)
                      t.lost <- t.lost + Queue.length p.pd_frames;
                      Queue.clear p.pd_frames;
                      p.pd_attempt <- 0
                    end
                    else if not p.pd_timer then begin
                      p.pd_timer <- true;
                      t.reconnects <- t.reconnects + 1;
                      Clock.schedule t.clock
                        ~label:
                          (Clock.Timer
                             {
                               owner = src;
                               info = Printf.sprintf "reconnect#%d %s" attempt dst;
                             })
                        ~delay_ms:(Arq.backoff_ms t.policy ~attempt)
                        (fun () ->
                          p.pd_timer <- false;
                          if not (Queue.is_empty p.pd_frames) then
                            try_dial t ~src ~dst)
                    end)))

(* ---- fault middleware + send ----------------------------------------- *)

let severed t ~src ~dst =
  Hashtbl.mem t.partitions (link_key src dst)
  ||
  match t.faults with
  | None -> false
  | Some f -> f.Net.fh_down ~now:(Clock.now_ms t.clock) ~src ~dst

let send_frame t ~src ~dst ~category frame =
  match find_conn t ~local:src ~peer:dst with
  | Some c ->
      enqueue c frame;
      flush_conn t c
  | None ->
      Queue.push (category, frame) (pending_for t ~src ~dst).pd_frames;
      try_dial t ~src ~dst

let send t ep ?info:_ ~dst ~category ~size:_ payload =
  let src = ep.ep_addr in
  let now = Clock.now_ms t.clock in
  let copies =
    1
    + (match t.faults with
      | None -> 0
      | Some f -> max 0 (f.Net.fh_duplicates ~now ~src ~dst))
  in
  if copies > 1 then t.injected_duplicates <- t.injected_duplicates + (copies - 1);
  for _copy = 1 to copies do
    (* Sampled per copy, like the sim: each copy is independently
       dropped, corrupted and delayed. Bytes are charged for every copy
       (dropped or not, as the sim does) by the actual framed wire
       size, not the caller's logical estimate. *)
    let payload =
      match t.faults with
      | None -> payload
      | Some f -> (
          match f.Net.fh_corrupt ~now ~src ~dst payload with
          | None -> payload
          | Some p ->
              t.corrupted_frames <- t.corrupted_frames + 1;
              p)
    in
    let frame = data_frame t ~category (t.codec.c_encode payload) in
    Stats.record t.stats category ~bytes:(String.length frame);
    let injected_drop =
      (not (severed t ~src ~dst))
      &&
      match t.faults with
      | None -> false
      | Some f ->
          let hit = f.Net.fh_drop ~now ~src ~dst in
          if hit then t.injected_drops <- t.injected_drops + 1;
          hit
    in
    if severed t ~src ~dst || injected_drop then t.dropped <- t.dropped + 1
    else
      let delay =
        match t.faults with
        | None -> 0.
        | Some f -> max 0. (f.Net.fh_delay ~now ~src ~dst)
      in
      if delay > 0. then
        Clock.schedule t.clock
          ~label:(Clock.Act { owner = src; info = "delayed-send " ^ dst })
          ~delay_ms:delay
          (fun () -> send_frame t ~src ~dst ~category frame)
      else send_frame t ~src ~dst ~category frame
  done

let connect t ep dst =
  match find_conn t ~local:ep.ep_addr ~peer:dst with
  | Some _ -> ()
  | None -> try_dial t ~src:ep.ep_addr ~dst

let disconnect t ep dst =
  match find_conn t ~local:ep.ep_addr ~peer:dst with
  | Some c ->
      flush_conn t c;
      kill_conn t c
  | None -> ()

(* ---- receive path ----------------------------------------------------- *)

let dispatch t c frame_len payload =
  let r = R.create payload in
  try
    match R.u8 r with
    | 0x48 ->
      (* hello: the dialer identifies itself *)
        let peer =
          String.sub payload (R.pos r) (String.length payload - R.pos r)
        in
        c.cn_peer <- Some peer;
        emit t (Connected { local = c.cn_local; peer })
    | 0x44 -> (
        match c.cn_peer with
        | None -> t.dropped <- t.dropped + 1  (* data before hello *)
        | Some peer ->
            let cat_idx = R.u8 r in
            let stamp = R.f64 r in
            let body =
              String.sub payload (R.pos r) (String.length payload - R.pos r)
            in
            let category =
              if cat_idx < ncat then Stats.of_index cat_idx else Stats.Control
            in
            t.rx_bytes.(Stats.index category) <-
              t.rx_bytes.(Stats.index category) + frame_len;
            t.rx_messages.(Stats.index category) <-
              t.rx_messages.(Stats.index category) + 1;
            if severed t ~src:peer ~dst:c.cn_local then
              (* A partition cut while the frame sat in kernel buffers
                 kills it on arrival, mirroring the sim's in-flight cut. *)
              t.dropped <- t.dropped + 1
            else (
              match t.codec.c_decode body with
              | Error _ -> t.integrity_drops <- t.integrity_drops + 1
              | Ok v -> (
                  match t.integrity with
                  | Some chk when not (chk v) ->
                      t.integrity_drops <- t.integrity_drops + 1
                  | _ -> (
                      Stats.record_latency t.stats category
                        ~ms:(Float.max 0. (wall_ms () -. stamp));
                      match Hashtbl.find_opt t.endpoints c.cn_local with
                      | None -> t.dropped <- t.dropped + 1
                      | Some ep -> ep.ep_handler ~src:peer v))))
    | _ -> t.integrity_drops <- t.integrity_drops + 1
  with R.Underflow _ -> t.integrity_drops <- t.integrity_drops + 1

let read_chunk = Bytes.create 65536

let service_read t c =
  match Unix.read c.fd read_chunk 0 (Bytes.length read_chunk) with
  | 0 -> kill_conn t c
  | n ->
      Framing.Decoder.feed c.cn_dec ~len:n (Bytes.unsafe_to_string read_chunk);
      let rec drain () =
        if c.cn_alive then
          match Framing.Decoder.pop c.cn_dec with
          | Ok (Some frame) ->
              dispatch t c
                (String.length frame + Framing.frame_overhead (String.length frame))
                frame;
              drain ()
          | Ok None -> ()
          | Error _ ->
              (* Unframeable garbage: the stream is unrecoverable. *)
              t.integrity_drops <- t.integrity_drops + 1;
              kill_conn t c
      in
      drain ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ -> kill_conn t c

let service_accept t ep =
  let rec go () =
    match Unix.accept ep.ep_listen with
    | fd, _ ->
        Unix.set_nonblock fd;
        let c =
          {
            fd;
            cn_local = ep.ep_addr;
            cn_peer = None;
            cn_dec = Framing.Decoder.create ();
            cn_out = Queue.create ();
            cn_off = 0;
            cn_alive = true;
          }
        in
        t.conns <- c :: t.conns;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

(* ---- the poll loop ---------------------------------------------------- *)

let has_buffered_out t =
  List.exists (fun c -> c.cn_alive && not (Queue.is_empty c.cn_out)) t.conns

let poll t ~timeout_ms =
  if t.closed then false
  else begin
    let listeners =
      Hashtbl.fold (fun _ ep acc -> (ep.ep_listen, `L ep) :: acc) t.endpoints []
    in
    let conns = t.conns in
    let rds =
      List.map fst listeners @ List.map (fun c -> c.fd) conns
    in
    let wrs =
      List.filter_map
        (fun c -> if Queue.is_empty c.cn_out then None else Some c.fd)
        conns
    in
    let timeout =
      let t_io = Float.max 0. timeout_ms in
      match Clock.next_due_ms t.clock with
      | Some due -> Float.min t_io due /. 1000.
      | None -> t_io /. 1000.
    in
    let r, w, _ =
      try Unix.select rds wrs [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun (fd, `L ep) -> if List.memq fd r then service_accept t ep)
      listeners;
    List.iter (fun c -> if c.cn_alive && List.memq c.fd r then service_read t c) conns;
    List.iter (fun c -> if c.cn_alive && List.memq c.fd w then flush_conn t c) conns;
    let fired = Clock.tick t.clock in
    r <> [] || w <> [] || fired > 0
  end

(* Run "to quiescence": until a few consecutive polls see no I/O, no
   fired timer, nothing buffered and no timer due soon. A stream fabric
   has no global done-signal the way the sim's empty event queue is, so
   this is a heuristic — protocol drivers should prefer [drive_until]
   with a real predicate. *)
let run t =
  let deadline = Clock.now_ms t.clock +. 30_000. in
  let rec go idle =
    if idle >= 3 || Clock.now_ms t.clock > deadline then ()
    else
      let active = poll t ~timeout_ms:20. in
      let due_soon =
        match Clock.next_due_ms t.clock with Some d -> d <= 100. | None -> false
      in
      if active || has_buffered_out t || due_soon then go 0 else go (idle + 1)
  in
  go 0

let drive_until t ?deadline_ms pred =
  let deadline =
    match deadline_ms with
    | Some d -> d
    | None -> Clock.now_ms t.clock +. 30_000.
  in
  let rec go () =
    if pred () then true
    else if Clock.now_ms t.clock >= deadline then pred ()
    else begin
      let budget = Float.min 20. (deadline -. Clock.now_ms t.clock) in
      ignore (poll t ~timeout_ms:budget);
      go ()
    end
  in
  go ()

(* ---- faults / partitions / accounting -------------------------------- *)

let set_fault_hooks t f = t.faults <- f
let set_integrity t f = t.integrity <- f
let partition t a b = Hashtbl.replace t.partitions (link_key a b) ()
let heal t a b = Hashtbl.remove t.partitions (link_key a b)

let clock t = t.clock
let stats t = t.stats
let family t = t.family
let dropped t = t.dropped
let lost t = t.lost
let reconnects t = t.reconnects
let injected_drops t = t.injected_drops
let injected_duplicates t = t.injected_duplicates
let corrupted_frames t = t.corrupted_frames
let integrity_drops t = t.integrity_drops
let received_bytes t c = t.rx_bytes.(Stats.index c)
let received_messages t c = t.rx_messages.(Stats.index c)
let total_received_bytes t = Array.fold_left ( + ) 0 t.rx_bytes

let endpoints t =
  Hashtbl.fold (fun a _ acc -> a :: acc) t.endpoints []
  |> List.sort String.compare

let remove_endpoint t addr =
  match Hashtbl.find_opt t.endpoints addr with
  | None -> ()
  | Some ep ->
      Hashtbl.remove t.endpoints addr;
      List.iter (fun c -> if c.cn_local = addr then kill_conn t c) t.conns;
      (try Unix.close ep.ep_listen with Unix.Unix_error _ -> ());
      if t.family = Unix_socket then
        try Unix.unlink (unix_path t addr) with Unix.Unix_error _ -> ()

let close t =
  if not t.closed then begin
    (* Give buffered output one last chance to leave. *)
    List.iter (fun c -> flush_conn t c) t.conns;
    List.iter (fun c -> kill_conn t c) t.conns;
    List.iter (fun a -> remove_endpoint t a) (endpoints t);
    t.closed <- true
  end
