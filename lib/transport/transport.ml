module Net = Pti_net.Net
module Sim = Pti_net.Sim
module Arq = Pti_net.Arq
module Clock = Pti_net.Clock
module Stats = Pti_net.Stats

type address = string
type kind = Sim | Unix_socket | Tcp

let kind_name = function Sim -> "sim" | Unix_socket -> "unix" | Tcp -> "tcp"

let kind_of_string = function
  | "sim" -> Some Sim
  | "unix" | "unix-socket" | "uds" -> Some Unix_socket
  | "tcp" -> Some Tcp
  | _ -> None

type 'a codec = 'a Stream.codec = {
  c_encode : 'a -> string;
  c_decode : string -> ('a, string) result;
}

type conn_event = Stream.conn_event =
  | Connected of { local : address; peer : address }
  | Disconnected of { local : address; peer : address }

(* The sim fabric is the Net plus a Clock wrapper over its simulator —
   no state of its own, so [of_net] twice on one net is harmless. *)
type 'a sim_fabric = { net : 'a Net.t; sclock : Clock.t }

type 'a t = Sim_f of 'a sim_fabric | Stream_f of 'a Stream.t

type 'a endpoint =
  | Sim_ep of { sf : 'a sim_fabric; addr : address }
  | Stream_ep of 'a Stream.endpoint

let of_net net = Sim_f { net; sclock = Clock.of_sim (Net.sim net) }

let create_unix ?dir ?reliability ?metrics ~codec () =
  let s =
    Stream.create ~family:Stream.Unix_socket ?policy:reliability
      ?unix_dir:dir ?metrics ()
  in
  Stream.set_codec s codec;
  Stream_f s

let create_tcp ?host ?reliability ?metrics ~codec () =
  let s =
    Stream.create ~family:Stream.Tcp ?policy:reliability ?tcp_host:host
      ?metrics ()
  in
  Stream.set_codec s codec;
  Stream_f s

let kind = function
  | Sim_f _ -> Sim
  | Stream_f s -> (
      match Stream.family s with Stream.Unix_socket -> Unix_socket | Stream.Tcp -> Tcp)

let clock = function Sim_f sf -> sf.sclock | Stream_f s -> Stream.clock s
let now_ms t = Clock.now_ms (clock t)
let stats = function Sim_f sf -> Net.stats sf.net | Stream_f s -> Stream.stats s
let sim_net = function Sim_f sf -> Some sf.net | Stream_f _ -> None

let add_endpoint t addr ~handler =
  match t with
  | Sim_f sf ->
      Net.add_host sf.net addr ~handler:(fun ~net:_ ~src msg -> handler ~src msg);
      Sim_ep { sf; addr }
  | Stream_f s -> Stream_ep (Stream.add_endpoint s addr ~handler)

let remove_endpoint t addr =
  match t with
  | Sim_f sf -> Net.remove_host sf.net addr
  | Stream_f s -> Stream.remove_endpoint s addr

let endpoint_address = function
  | Sim_ep { addr; _ } -> addr
  | Stream_ep ep -> ep.Stream.ep_addr

let register_remote t addr spec =
  match t with
  | Sim_f _ -> ()
  | Stream_f s -> Stream.register_remote s addr spec

let set_bind t addr spec =
  match t with Sim_f _ -> () | Stream_f s -> Stream.set_bind s addr spec

let set_bind_fd t addr fd =
  match t with Sim_f _ -> () | Stream_f s -> Stream.set_bind_fd s addr fd

let listen_spec t addr =
  match t with Sim_f _ -> None | Stream_f s -> Stream.listen_spec s addr

let send ep ?info ~dst ~category ~size payload =
  match ep with
  | Sim_ep { sf; addr } ->
      Net.send sf.net ?info ~src:addr ~dst ~category ~size payload
  | Stream_ep e ->
      Stream.send e.Stream.ep_owner e ?info ~dst ~category ~size payload

let connect ep dst =
  match ep with
  | Sim_ep _ -> ()
  | Stream_ep e -> Stream.connect e.Stream.ep_owner e dst

let disconnect ep dst =
  match ep with
  | Sim_ep _ -> ()
  | Stream_ep e -> Stream.disconnect e.Stream.ep_owner e dst

let on_conn_event t f =
  match t with Sim_f _ -> () | Stream_f s -> Stream.on_conn_event s f

let timer t ~owner ~info ~delay_ms f =
  Clock.schedule (clock t) ~label:(Clock.Timer { owner; info }) ~delay_ms f

let timer_cancellable t ~owner ~info ~delay_ms f =
  Clock.schedule_cancellable (clock t) ~label:(Clock.Timer { owner; info })
    ~delay_ms f

let act t ~owner ~info ~delay_ms f =
  Clock.schedule (clock t) ~label:(Clock.Act { owner; info }) ~delay_ms f

let step = function
  | Sim_f sf -> Sim.step (Net.sim sf.net)
  | Stream_f s -> Stream.poll s ~timeout_ms:1.

let poll t ~timeout_ms =
  match t with
  | Sim_f sf ->
      ignore timeout_ms;
      Sim.step (Net.sim sf.net)
  | Stream_f s -> Stream.poll s ~timeout_ms

let run = function Sim_f sf -> Net.run sf.net | Stream_f s -> Stream.run s

let drive_until t ?deadline_ms pred =
  match t with
  | Sim_f sf ->
      let sim = Net.sim sf.net in
      let before_deadline () =
        match deadline_ms with None -> true | Some d -> Sim.now sim < d
      in
      let rec go () =
        if pred () then true
        else if not (before_deadline ()) then pred ()
        else if Sim.step sim then go ()
        else pred ()
      in
      go ()
  | Stream_f s -> Stream.drive_until s ?deadline_ms pred

let set_fault_hooks t f =
  match t with
  | Sim_f sf -> Net.set_fault_hooks sf.net f
  | Stream_f s -> Stream.set_fault_hooks s f

let set_integrity t f =
  match t with
  | Sim_f sf -> Net.set_integrity sf.net f
  | Stream_f s -> Stream.set_integrity s f

let partition t a b =
  match t with
  | Sim_f sf -> Net.partition sf.net a b
  | Stream_f s -> Stream.partition s a b

let heal t a b =
  match t with
  | Sim_f sf -> Net.heal sf.net a b
  | Stream_f s -> Stream.heal s a b

let dropped_messages = function
  | Sim_f sf -> Net.dropped_messages sf.net
  | Stream_f s -> Stream.dropped s

let lost_messages = function
  | Sim_f sf -> Net.lost_messages sf.net
  | Stream_f s -> Stream.lost s

let retransmissions = function
  | Sim_f sf -> Net.retransmissions sf.net
  | Stream_f s -> Stream.reconnects s

let injected_drops = function
  | Sim_f sf -> Net.injected_drops sf.net
  | Stream_f s -> Stream.injected_drops s

let injected_duplicates = function
  | Sim_f sf -> Net.injected_duplicates sf.net
  | Stream_f s -> Stream.injected_duplicates s

let corrupted_frames = function
  | Sim_f sf -> Net.corrupted_frames sf.net
  | Stream_f s -> Stream.corrupted_frames s

let integrity_drops = function
  | Sim_f sf -> Net.integrity_drops sf.net
  | Stream_f s -> Stream.integrity_drops s

let received_bytes t c =
  match t with Sim_f _ -> 0 | Stream_f s -> Stream.received_bytes s c

let total_received_bytes = function
  | Sim_f _ -> 0
  | Stream_f s -> Stream.total_received_bytes s

let close = function Sim_f _ -> () | Stream_f s -> Stream.close s
