open Pti_cts
module Xml = Pti_xml.Xml
module Guid = Pti_util.Guid
module B64 = Pti_util.Base64

type codec = Soap | Binary

type type_entry = {
  te_name : string;
  te_guid : Guid.t;
  te_assembly : string;
  te_download_path : string;
}

type payload = Psoap of Xml.t | Pbinary of string

type t = { env_types : type_entry list; env_payload : payload }

type error = Malformed of string | Unknown_type of string | Corrupt of string

let pp_error ppf = function
  | Malformed m -> Format.fprintf ppf "malformed envelope: %s" m
  | Unknown_type ty -> Format.fprintf ppf "unknown type %S" ty
  | Corrupt m -> Format.fprintf ppf "corrupt envelope: %s" m

(* Canonical content string the integrity digest is computed over: the
   semantic fields of the envelope, not its XML rendering, so the check
   is immune to whitespace/attribute-order differences between writer
   and reader. The separators cannot occur in the fields' own text
   ambiguously (0x00/0x01 never appear in names, guids or paths). *)
let canonical t =
  String.concat "\x00"
    (List.map
       (fun e ->
         String.concat "\x01"
           [
             e.te_name;
             Guid.to_string e.te_guid;
             e.te_assembly;
             e.te_download_path;
           ])
       t.env_types
    @ [
        (match t.env_payload with
        | Psoap x -> "soap:" ^ Xml.to_string x
        | Pbinary b -> "binary:" ^ b);
      ])

let digest t = Pti_util.Fnv.hash_hex (canonical t)

(* Distinct class names reachable from a value, in first-visit order. *)
let graph_classes v =
  let seen_obj = Hashtbl.create 16 in
  let found = ref [] in
  let rec go v =
    match v with
    | Value.Vnull | Value.Vbool _ | Value.Vint _ | Value.Vfloat _
    | Value.Vstring _ | Value.Vchar _ ->
        ()
    | Value.Vproxy p -> go p.Value.px_target
    | Value.Varr a -> Array.iter go a.Value.items
    | Value.Vobj o ->
        if not (Hashtbl.mem seen_obj o.Value.oid) then begin
          Hashtbl.add seen_obj o.Value.oid ();
          if not (List.exists (Pti_util.Strutil.equal_ci o.Value.cls) !found)
          then found := o.Value.cls :: !found;
          Hashtbl.iter (fun _ v -> go v) o.Value.fields
        end
  in
  go v;
  List.rev !found

let make reg ~codec ~download_path v =
  let classes = graph_classes v in
  let env_types =
    List.map
      (fun cls ->
        match Registry.find reg cls with
        | None ->
            invalid_arg
              (Printf.sprintf "Envelope.make: class %S not registered" cls)
        | Some cd ->
            {
              te_name = Meta.qualified_name cd;
              te_guid = cd.Meta.td_guid;
              te_assembly = cd.Meta.td_assembly;
              te_download_path = download_path ~assembly:cd.Meta.td_assembly;
            })
      classes
  in
  let env_payload =
    match codec with
    | Soap -> Psoap (Soap_ser.encode_xml v)
    | Binary -> Pbinary (Bin_ser.encode v)
  in
  { env_types; env_payload }

let required_classes t = List.map (fun e -> e.te_name) t.env_types

let payload_codec t =
  match t.env_payload with Psoap _ -> Soap | Pbinary _ -> Binary

let decode_payload reg t =
  match t.env_payload with
  | Psoap x -> (
      match Soap_ser.decode_xml reg x with
      | Ok v -> Ok v
      | Error (Soap_ser.Malformed m) -> Error (Malformed m)
      | Error (Soap_ser.Unknown_type ty) -> Error (Unknown_type ty))
  | Pbinary b -> (
      match Bin_ser.decode reg b with
      | Ok v -> Ok v
      | Error (Bin_ser.Malformed m) -> Error (Malformed m)
      | Error (Bin_ser.Unknown_type ty) -> Error (Unknown_type ty)
      | Error (Bin_ser.Corrupt m) -> Error (Corrupt m))

let to_xml t =
  let open Xml in
  elt "envelope"
    ~attrs:[ ("digest", digest t) ]
    (List.map
       (fun e ->
         elt "type"
           ~attrs:
             [
               ("name", e.te_name);
               ("guid", Guid.to_string e.te_guid);
               ("assembly", e.te_assembly);
               ("downloadPath", e.te_download_path);
             ]
           [])
       t.env_types
    @ [
        (match t.env_payload with
        | Psoap x -> elt "payload" ~attrs:[ ("encoding", "soap") ] [ x ]
        | Pbinary b ->
            elt "payload"
              ~attrs:[ ("encoding", "binary") ]
              [ text (B64.encode b) ]);
      ])

let attr name x =
  match Xml.attr name x with
  | Some v -> Ok v
  | None -> Error (Malformed (Printf.sprintf "missing attribute %S" name))

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let of_xml x =
  match Xml.tag x with
  | Some "envelope" ->
      let* env_types =
        map_result
          (fun e ->
            let* te_name = attr "name" e in
            let* guid_s = attr "guid" e in
            let* te_guid =
              match Guid.of_string guid_s with
              | Some g -> Ok g
              | None -> Error (Malformed (Printf.sprintf "bad guid %S" guid_s))
            in
            let* te_assembly = attr "assembly" e in
            let* te_download_path = attr "downloadPath" e in
            Ok { te_name; te_guid; te_assembly; te_download_path })
          (Xml.childs "type" x)
      in
      let* payload_elt =
        match Xml.child "payload" x with
        | Some p -> Ok p
        | None -> Error (Malformed "missing <payload>")
      in
      let* encoding = attr "encoding" payload_elt in
      let* env_payload =
        match encoding with
        | "soap" -> (
            match
              List.filter
                (function Xml.Element _ -> true | _ -> false)
                (Xml.children payload_elt)
            with
            | [ inner ] -> Ok (Psoap inner)
            | _ -> Error (Malformed "soap payload expects one element"))
        | "binary" -> (
            match B64.decode (Xml.text_content payload_elt) with
            | Some b -> Ok (Pbinary b)
            | None -> Error (Malformed "bad base64 payload"))
        | other ->
            Error (Malformed (Printf.sprintf "unknown encoding %S" other))
      in
      let t = { env_types; env_payload } in
      (* An envelope written before digests existed (no attribute) is
         accepted as-is; a present digest must match the recomputed one. *)
      let* () =
        match Xml.attr "digest" x with
        | None -> Ok ()
        | Some d when String.equal d (digest t) -> Ok ()
        | Some _ -> Error (Corrupt "envelope digest mismatch")
      in
      Ok t
  | Some other ->
      Error (Malformed (Printf.sprintf "expected <envelope>, got <%s>" other))
  | None -> Error (Malformed "expected an element")

let to_string t = Xml.to_string (to_xml t)

let of_string s =
  match Xml.parse s with
  | Error e -> Error (Malformed (Format.asprintf "%a" Xml.pp_error e))
  | Ok x -> of_xml x

let size_bytes t = String.length (to_string t)
