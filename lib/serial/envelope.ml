open Pti_cts
module Xml = Pti_xml.Xml
module Guid = Pti_util.Guid
module B64 = Pti_util.Base64

type codec = Soap | Binary

type type_entry = {
  te_name : string;
  te_guid : Guid.t;
  te_assembly : string;
  te_download_path : string;
  te_version : int;
      (* Version of the carrying assembly on its publisher's chain;
         0 = unversioned (pre-evolution sender). Kept out of canonical
         bytes and wire frames when 0 so pre-evolution digests and
         encodings are unchanged. *)
}

type payload = Psoap of Xml.t | Pbinary of string

type t = { env_types : type_entry list; env_payload : payload }

type error =
  | Malformed of string
  | Unknown_type of string
  | Corrupt of string
  | Unknown_handles of int list

let pp_error ppf = function
  | Malformed m -> Format.fprintf ppf "malformed envelope: %s" m
  | Unknown_type ty -> Format.fprintf ppf "unknown type %S" ty
  | Corrupt m -> Format.fprintf ppf "corrupt envelope: %s" m
  | Unknown_handles hs ->
      Format.fprintf ppf "unknown type handles [%s]"
        (String.concat "; " (List.map string_of_int hs))

(* Canonical content string the integrity digest is computed over: the
   semantic fields of the envelope, not its XML rendering, so the check
   is immune to whitespace/attribute-order differences between writer
   and reader. Every field is length-prefixed (netstring style): the
   binary payload is arbitrary bytes, so no in-band separator is safe —
   a 0x00/0x01 scheme let two distinct envelopes share a digest. *)
let canonical t =
  let b = Buffer.create 256 in
  let field s =
    Buffer.add_string b (string_of_int (String.length s));
    Buffer.add_char b ':';
    Buffer.add_string b s
  in
  List.iter
    (fun e ->
      field e.te_name;
      field (Guid.to_string e.te_guid);
      field e.te_assembly;
      field e.te_download_path;
      (* Versioned entries fold the version into the digest; version 0
         stays absent so pre-evolution envelopes keep their digests. *)
      if e.te_version > 0 then field ("v" ^ string_of_int e.te_version))
    t.env_types;
  (match t.env_payload with
  | Psoap x ->
      field "soap";
      field (Xml.to_string x)
  | Pbinary p ->
      field "binary";
      field p);
  Buffer.contents b

let digest t = Pti_util.Fnv.hash_hex (canonical t)

(* Distinct class names reachable from a value, in first-visit order. *)
let graph_classes v =
  let seen_obj = Hashtbl.create 16 in
  let found = ref [] in
  let rec go v =
    match v with
    | Value.Vnull | Value.Vbool _ | Value.Vint _ | Value.Vfloat _
    | Value.Vstring _ | Value.Vchar _ ->
        ()
    | Value.Vproxy p -> go p.Value.px_target
    | Value.Varr a -> Array.iter go a.Value.items
    | Value.Vobj o ->
        if not (Hashtbl.mem seen_obj o.Value.oid) then begin
          Hashtbl.add seen_obj o.Value.oid ();
          if not (List.exists (Pti_util.Strutil.equal_ci o.Value.cls) !found)
          then found := o.Value.cls :: !found;
          (* Visit fields in name order: [Hashtbl.iter] order depends on
             stdlib hash internals, which would leak into envelope bytes
             (and digests) via the type-entry list. *)
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) o.Value.fields []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b)
          |> List.iter (fun (_, v) -> go v)
        end
  in
  go v;
  List.rev !found

let make ?(version_of = fun ~assembly:_ -> 0) reg ~codec ~download_path v =
  let classes = graph_classes v in
  let env_types =
    List.map
      (fun cls ->
        match Registry.find reg cls with
        | None ->
            invalid_arg
              (Printf.sprintf "Envelope.make: class %S not registered" cls)
        | Some cd ->
            {
              te_name = Meta.qualified_name cd;
              te_guid = cd.Meta.td_guid;
              te_assembly = cd.Meta.td_assembly;
              te_download_path = download_path ~assembly:cd.Meta.td_assembly;
              te_version = version_of ~assembly:cd.Meta.td_assembly;
            })
      classes
  in
  (* Deterministic emission order: the root's class stays first (the
     receiver's fast path and eager prefetch key off it), the tail is
     sorted by qualified name. *)
  let env_types =
    match env_types with
    | root :: rest ->
        root
        :: List.sort (fun a b -> String.compare a.te_name b.te_name) rest
    | [] -> []
  in
  let env_payload =
    match codec with
    | Soap -> Psoap (Soap_ser.encode_xml v)
    | Binary -> Pbinary (Bin_ser.encode v)
  in
  { env_types; env_payload }

let required_classes t = List.map (fun e -> e.te_name) t.env_types

let payload_codec t =
  match t.env_payload with Psoap _ -> Soap | Pbinary _ -> Binary

(* Version-pinned class resolution: a payload class named by the
   envelope decodes against the exact description the sender stamped (by
   GUID), not whatever the name happens to resolve to at decode time — a
   receiver that upgraded mid-flight must not decode an old envelope
   against the new version. Names outside the envelope (or GUIDs the
   registry never learned) fall back to by-name lookup, the
   pre-evolution behavior. *)
let pinned_resolve reg t name =
  let pinned =
    List.find_opt
      (fun e -> Pti_util.Strutil.equal_ci e.te_name name)
      t.env_types
  in
  match pinned with
  | Some e -> (
      match Registry.find_by_guid reg e.te_guid with
      | Some cd -> Some cd
      | None -> Registry.find reg name)
  | None -> Registry.find reg name

let decode_payload reg t =
  let resolve = pinned_resolve reg t in
  match t.env_payload with
  | Psoap x -> (
      match Soap_ser.decode_xml ~resolve reg x with
      | Ok v -> Ok v
      | Error (Soap_ser.Malformed m) -> Error (Malformed m)
      | Error (Soap_ser.Unknown_type ty) -> Error (Unknown_type ty))
  | Pbinary b -> (
      match Bin_ser.decode ~resolve reg b with
      | Ok v -> Ok v
      | Error (Bin_ser.Malformed m) -> Error (Malformed m)
      | Error (Bin_ser.Unknown_type ty) -> Error (Unknown_type ty)
      | Error (Bin_ser.Corrupt m) -> Error (Corrupt m))

let entry_attrs e =
  [
    ("name", e.te_name);
    ("guid", Guid.to_string e.te_guid);
    ("assembly", e.te_assembly);
    ("downloadPath", e.te_download_path);
  ]
  @ if e.te_version > 0 then [ ("version", string_of_int e.te_version) ] else []

let payload_to_xml = function
  | Psoap x -> Xml.elt "payload" ~attrs:[ ("encoding", "soap") ] [ x ]
  | Pbinary b ->
      Xml.elt "payload"
        ~attrs:[ ("encoding", "binary") ]
        [ Xml.text (B64.encode b) ]

let to_xml t =
  let open Xml in
  elt "envelope"
    ~attrs:[ ("digest", digest t) ]
    (List.map (fun e -> elt "type" ~attrs:(entry_attrs e) []) t.env_types
    @ [ payload_to_xml t.env_payload ])

let attr name x =
  match Xml.attr name x with
  | Some v -> Ok v
  | None -> Error (Malformed (Printf.sprintf "missing attribute %S" name))

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let entry_of_elt e =
  let* te_name = attr "name" e in
  let* guid_s = attr "guid" e in
  let* te_guid =
    match Guid.of_string guid_s with
    | Some g -> Ok g
    | None -> Error (Malformed (Printf.sprintf "bad guid %S" guid_s))
  in
  let* te_assembly = attr "assembly" e in
  let* te_download_path = attr "downloadPath" e in
  (* Optional: absent on envelopes from pre-evolution senders. *)
  let* te_version =
    match Xml.attr "version" e with
    | None -> Ok 0
    | Some s -> (
        match int_of_string_opt s with
        | Some v when v >= 0 -> Ok v
        | _ -> Error (Malformed (Printf.sprintf "bad version %S" s)))
  in
  Ok { te_name; te_guid; te_assembly; te_download_path; te_version }

let payload_of_xml x =
  let* payload_elt =
    match Xml.child "payload" x with
    | Some p -> Ok p
    | None -> Error (Malformed "missing <payload>")
  in
  let* encoding = attr "encoding" payload_elt in
  match encoding with
  | "soap" -> (
      match
        List.filter
          (function Xml.Element _ -> true | _ -> false)
          (Xml.children payload_elt)
      with
      | [ inner ] -> Ok (Psoap inner)
      | _ -> Error (Malformed "soap payload expects one element"))
  | "binary" -> (
      match B64.decode (Xml.text_content payload_elt) with
      | Some b -> Ok (Pbinary b)
      | None -> Error (Malformed "bad base64 payload"))
  | other -> Error (Malformed (Printf.sprintf "unknown encoding %S" other))

let of_xml x =
  match Xml.tag x with
  | Some "envelope" ->
      let* env_types = map_result entry_of_elt (Xml.childs "type" x) in
      let* env_payload = payload_of_xml x in
      let t = { env_types; env_payload } in
      (* An envelope written before digests existed (no attribute) is
         accepted as-is; a present digest must match the recomputed one. *)
      let* () =
        match Xml.attr "digest" x with
        | None -> Ok ()
        | Some d when String.equal d (digest t) -> Ok ()
        | Some _ -> Error (Corrupt "envelope digest mismatch")
      in
      Ok t
  | Some other ->
      Error (Malformed (Printf.sprintf "expected <envelope>, got <%s>" other))
  | None -> Error (Malformed "expected an element")

let to_string t = Xml.to_string (to_xml t)

let of_string s =
  match Xml.parse s with
  | Error e -> Error (Malformed (Format.asprintf "%a" Xml.pp_error e))
  | Ok x -> of_xml x

let size_bytes t = String.length (to_string t)

(* ------------------- negotiated type handles ----------------------- *)

(* A handle-encoded envelope replaces repeat type entries with
   [<typeref handle="n"/>] references into a per-link table negotiated
   on first use ([`Bind] ships the full entry together with its handle).
   Two digests guard it: [digest] is semantic — computed over the fully
   reconstructed envelope, so a stale or corrupted table binding can
   never pass as an intact delivery — and [wire] covers the literal
   document content (including the bare handle numbers), so frame-level
   integrity checks need no table at all. *)

type handle_form = [ `Plain | `Bind of int | `Ref of int ]

let wire_canonical forms payload =
  let b = Buffer.create 256 in
  let field s =
    Buffer.add_string b (string_of_int (String.length s));
    Buffer.add_char b ':';
    Buffer.add_string b s
  in
  let entry e =
    field e.te_name;
    field (Guid.to_string e.te_guid);
    field e.te_assembly;
    field e.te_download_path;
    if e.te_version > 0 then field ("v" ^ string_of_int e.te_version)
  in
  List.iter
    (fun (form, e) ->
      match form with
      | `Plain ->
          field "P";
          entry e
      | `Bind h ->
          field "B";
          field (string_of_int h);
          entry e
      | `Ref h ->
          field "R";
          field (string_of_int h))
    forms;
  (match payload with
  | Psoap x ->
      field "soap";
      field (Xml.to_string x)
  | Pbinary p ->
      field "binary";
      field p);
  Buffer.contents b

let wire_digest forms payload =
  Pti_util.Fnv.hash_hex (wire_canonical forms payload)

let to_xml_h t ~form =
  let forms = List.map (fun e -> ((form e : handle_form), e)) t.env_types in
  let open Xml in
  elt "envelope"
    ~attrs:
      [ ("digest", digest t); ("wire", wire_digest forms t.env_payload) ]
    (List.map
       (fun (f, e) ->
         match f with
         | `Plain -> elt "type" ~attrs:(entry_attrs e) []
         | `Bind h ->
             elt "type"
               ~attrs:(entry_attrs e @ [ ("handle", string_of_int h) ])
               []
         | `Ref h -> elt "typeref" ~attrs:[ ("handle", string_of_int h) ] [])
       forms
    @ [ payload_to_xml t.env_payload ])

let to_string_h_xml t ~form = Xml.to_string (to_xml_h t ~form)

let handle_attr e =
  match Xml.attr "handle" e with
  | None -> Ok None
  | Some s -> (
      match int_of_string_opt s with
      | Some h when h > 0 -> Ok (Some h)
      | _ -> Error (Malformed (Printf.sprintf "bad handle %S" s)))

(* [resolve] consults the per-link table for [`Ref] handles; bindings
   shipped earlier in the same envelope are visible to later refs. The
   result carries the new bindings so the caller can install them. *)
let of_xml_h ~resolve x =
  match Xml.tag x with
  | Some "envelope" ->
      let* parsed =
        map_result
          (fun e ->
            match Xml.tag e with
            | Some "type" ->
                let* entry = entry_of_elt e in
                let* h = handle_attr e in
                Ok
                  (match h with
                  | None -> (`Plain, `Entry entry)
                  | Some h -> (`Bind h, `Entry entry))
            | Some "typeref" ->
                let* h = handle_attr e in
                let* h =
                  match h with
                  | Some h -> Ok h
                  | None -> Error (Malformed "typeref without handle")
                in
                Ok (`Ref h, `Handle h)
            | _ -> Ok (`Skip, `Skip))
          (List.filter
             (function
               | Xml.Element (t, _, _) -> t = "type" || t = "typeref"
               | _ -> false)
             (Xml.children x))
      in
      let* env_payload = payload_of_xml x in
      (* Wire-level integrity first: it needs no table, and a flipped
         handle number must surface as [Corrupt], not as a spurious
         renegotiation (or worse, a wrong-table hit). *)
      let forms =
        List.filter_map
          (fun (form, what) ->
            match (form, what) with
            | `Plain, `Entry e -> Some ((`Plain : handle_form), e)
            | `Bind h, `Entry e -> Some (`Bind h, e)
            | `Ref h, `Handle _ ->
                Some
                  ( `Ref h,
                    {
                      te_name = "";
                      te_guid = Guid.nil;
                      te_assembly = "";
                      te_download_path = "";
                      te_version = 0;
                    } )
            | _ -> None)
          parsed
      in
      let* () =
        match Xml.attr "wire" x with
        | None -> Ok ()
        | Some d when String.equal d (wire_digest forms env_payload) -> Ok ()
        | Some _ -> Error (Corrupt "envelope wire digest mismatch")
      in
      let bindings =
        List.filter_map
          (function `Bind h, `Entry e -> Some (h, e) | _ -> None)
          parsed
      in
      let unknown = ref [] in
      let env_types =
        List.filter_map
          (fun (form, what) ->
            match (form, what) with
            | _, `Entry e -> Some e
            | `Ref h, `Handle _ -> (
                match List.assoc_opt h bindings with
                | Some e -> Some e
                | None -> (
                    match resolve h with
                    | Some e -> Some e
                    | None ->
                        if not (List.mem h !unknown) then
                          unknown := h :: !unknown;
                        None))
            | _ -> None)
          parsed
      in
      let* () =
        match List.rev !unknown with
        | [] -> Ok ()
        | hs -> Error (Unknown_handles hs)
      in
      let t = { env_types; env_payload } in
      (* Semantic digest over the reconstruction: a wrong binding in the
         link table can never produce an intact-looking envelope. *)
      let* () =
        match Xml.attr "digest" x with
        | None -> Ok ()
        | Some d when String.equal d (digest t) -> Ok ()
        | Some _ -> Error (Corrupt "envelope digest mismatch")
      in
      Ok (t, bindings)
  | Some other ->
      Error (Malformed (Printf.sprintf "expected <envelope>, got <%s>" other))
  | None -> Error (Malformed "expected an element")

(* ---------------- compact binary wire form (PTIE) ------------------ *)

(* Handle-encoded envelopes go on the wire in a compact binary frame:
   XML plus base64 costs ~45% over the raw bytes, which defeats the
   point of shipping two-byte type refs. Layout:

     "PTIE\x01" | fnv64(body) | body
     body  = digest8 | varint n | slot* | payload | versions?
     slot  = 0x00                                (plain, 4 strings)
           | 0x01 varint handle, 4 strings       (bind)
           | 0x02 varint handle                  (ref)
     strings are name, guid, assembly, downloadPath (varint-prefixed)
     payload = u8 codec (0 soap / 1 binary) | string
     versions = varint per entry-carrying slot, wire order — emitted
           only when some entry is versioned; a decoder probes for the
           block with [at_end], so pre-evolution frames (no block, all
           versions 0) decode unchanged in both directions

   The frame checksum replaces the XML form's [wire] digest (literal
   content integrity, no table needed); [digest8] is the raw semantic
   digest over the reconstructed envelope, serving exactly like the
   XML [digest] attribute. The XML handle form remains accepted on
   decode as the interop fallback. *)

module W = Bytes_io.Writer
module R = Bytes_io.Reader

let bin_magic = "PTIE\x01"
let bin_header_len = String.length bin_magic + 8
let digest_raw t = Pti_util.Fnv.hash_bytes (canonical t)

let to_string_h t ~form =
  let w = W.create () in
  W.raw w (digest_raw t);
  W.varint w (List.length t.env_types);
  let entry e =
    W.string w e.te_name;
    W.string w (Guid.to_string e.te_guid);
    W.string w e.te_assembly;
    W.string w e.te_download_path
  in
  (* Entry-carrying slots in wire order, for the trailing version block. *)
  let carried = ref [] in
  List.iter
    (fun e ->
      match (form e : handle_form) with
      | `Plain ->
          W.u8 w 0;
          entry e;
          carried := e :: !carried
      | `Bind h ->
          W.u8 w 1;
          W.varint w h;
          entry e;
          carried := e :: !carried
      | `Ref h ->
          W.u8 w 2;
          W.varint w h)
    t.env_types;
  (match t.env_payload with
  | Psoap x ->
      W.u8 w 0;
      W.string w (Xml.to_string x)
  | Pbinary p ->
      W.u8 w 1;
      W.string w p);
  let carried = List.rev !carried in
  if List.exists (fun e -> e.te_version > 0) carried then
    List.iter (fun e -> W.varint w e.te_version) carried;
  let body = W.contents w in
  bin_magic ^ Pti_util.Fnv.hash_bytes body ^ body

let is_binary_h s =
  String.length s >= bin_header_len
  && String.equal (String.sub s 0 (String.length bin_magic)) bin_magic

let of_string_hb ~resolve s =
  let sum = String.sub s (String.length bin_magic) 8 in
  let body = String.sub s bin_header_len (String.length s - bin_header_len) in
  if not (String.equal sum (Pti_util.Fnv.hash_bytes body)) then
    Error (Corrupt "envelope wire checksum mismatch")
  else
    try
      let digest8 = String.sub body 0 8 in
      let r = R.create (String.sub body 8 (String.length body - 8)) in
      let n = R.varint r in
      if n < 0 || n > 10_000 then failwith "bad slot count";
      let entry () =
        let te_name = R.string r in
        let guid_s = R.string r in
        let te_guid =
          match Guid.of_string guid_s with
          | Some g -> g
          | None -> failwith (Printf.sprintf "bad guid %S" guid_s)
        in
        let te_assembly = R.string r in
        let te_download_path = R.string r in
        { te_name; te_guid; te_assembly; te_download_path; te_version = 0 }
      in
      (* Explicit recursion: reads are effectful, evaluation order must
         be the wire order. *)
      let rec read_slots acc k =
        if k = 0 then List.rev acc
        else
          let slot =
            match R.u8 r with
            | 0 -> `Plain_e (entry ())
            | 1 ->
                let h = R.varint r in
                `Bind_e (h, entry ())
            | 2 -> `Ref_h (R.varint r)
            | tag -> failwith (Printf.sprintf "bad slot tag %d" tag)
          in
          read_slots (slot :: acc) (k - 1)
      in
      let slots = read_slots [] n in
      let env_payload =
        match R.u8 r with
        | 0 -> (
            match Xml.parse (R.string r) with
            | Ok x -> Psoap x
            | Error e ->
                failwith (Format.asprintf "bad soap payload: %a" Xml.pp_error e)
            )
        | 1 -> Pbinary (R.string r)
        | tag -> failwith (Printf.sprintf "bad payload tag %d" tag)
      in
      (* Trailing version block: present only when some entry was
         versioned; a pre-evolution frame ends here. *)
      let slots =
        if R.at_end r then slots
        else
          (* Explicit recursion again: reads are effectful, the versions
             must be consumed in wire (slot) order. *)
          let rec patch acc = function
            | [] -> List.rev acc
            | `Plain_e e :: rest ->
                patch (`Plain_e { e with te_version = R.varint r } :: acc) rest
            | `Bind_e (h, e) :: rest ->
                patch
                  (`Bind_e (h, { e with te_version = R.varint r }) :: acc)
                  rest
            | (`Ref_h _ as s) :: rest -> patch (s :: acc) rest
          in
          patch [] slots
      in
      if not (R.at_end r) then failwith "trailing bytes in envelope"
      else begin
        let bindings =
          List.filter_map
            (function `Bind_e (h, e) -> Some (h, e) | _ -> None)
            slots
        in
        let unknown = ref [] in
        let env_types =
          List.filter_map
            (function
              | `Plain_e e | `Bind_e (_, e) -> Some e
              | `Ref_h h -> (
                  match List.assoc_opt h bindings with
                  | Some e -> Some e
                  | None -> (
                      match resolve h with
                      | Some e -> Some e
                      | None ->
                          if not (List.mem h !unknown) then
                            unknown := h :: !unknown;
                          None)))
            slots
        in
        match List.rev !unknown with
        | _ :: _ as hs -> Error (Unknown_handles hs)
        | [] ->
            let t = { env_types; env_payload } in
            (* Semantic digest over the reconstruction: a wrong binding
               in the link table can never look like an intact envelope. *)
            if String.equal digest8 (digest_raw t) then Ok (t, bindings)
            else Error (Corrupt "envelope digest mismatch")
      end
    with
    | R.Underflow m -> Error (Malformed m)
    | Failure m -> Error (Malformed m)

let of_string_h ~resolve s =
  if is_binary_h s then of_string_hb ~resolve s
  else
    match Xml.parse s with
    | Error e -> Error (Malformed (Format.asprintf "%a" Xml.pp_error e))
    | Ok x -> of_xml_h ~resolve x

(* Frame-level integrity probe for the chaos harness: true iff the
   document parses and its checksum / wire digest (or, for plain XML
   envelopes, the semantic digest) matches. Unknown handles do not make
   a frame dirty — they are a table condition, not wire damage. *)
let wire_ok s =
  match of_string_h ~resolve:(fun _ -> None) s with
  | Ok _ | Error (Unknown_handles _) -> true
  | Error (Corrupt _) -> false
  | Error (Malformed _ | Unknown_type _) -> false
