(* Length-prefixed framing shared by [Batch_frame] and the stream
   transports.

   A frame on a byte stream is a LEB128 varint length followed by that
   many payload bytes. The [Decoder] is incremental and partial-read
   safe: bytes arrive in arbitrary chunks (a TCP read can split a frame
   — or the length varint itself — at any byte boundary) and complete
   frames pop out as they materialise. The writer side is trivial, but
   lives here so both producers agree on the prefix encoding.

   Also home to the varint-counted string-list helpers [Batch_frame]
   and the wire codecs share, with the same bound on absurd counts. *)

module W = Bytes_io.Writer
module R = Bytes_io.Reader

let max_list = 100_000

let write_string_list w l =
  W.varint w (List.length l);
  List.iter (W.string w) l

(* Explicit recursion: the element reader is effectful, so evaluation
   order must be the wire order. *)
let read_list r f =
  let n = R.varint r in
  if n < 0 || n > max_list then failwith "bad list length";
  let rec go acc k = if k = 0 then List.rev acc else go (f r :: acc) (k - 1) in
  go [] n

let read_string_list r = read_list r R.string

(* ~16 MB: far above any PTI frame, far below a parser bomb. *)
let default_max_frame = 16 * 1024 * 1024

let encode payload =
  let w = W.create ~initial:(String.length payload + 5) () in
  W.varint w (String.length payload);
  W.raw w payload;
  W.contents w

let frame_overhead payload_len =
  let rec varint_len n = if n < 0x80 then 1 else 1 + varint_len (n lsr 7) in
  varint_len payload_len

module Decoder = struct
  type t = {
    buf : Buffer.t;
    mutable pos : int;  (* consumed prefix of [buf] *)
    max_frame : int;
  }

  let create ?(max_frame = default_max_frame) () =
    { buf = Buffer.create 4096; pos = 0; max_frame }

  let buffered t = Buffer.length t.buf - t.pos

  let feed t ?(off = 0) ?len s =
    let len = match len with Some l -> l | None -> String.length s - off in
    Buffer.add_substring t.buf s off len

  (* Parse a varint at [pos] without committing: the terminator byte may
     not have arrived yet. Returns the value and how many bytes it took. *)
  let try_varint t =
    let avail = buffered t in
    let rec go i shift acc =
      if i >= avail || i > 9 then None
      else
        let b = Char.code (Buffer.nth t.buf (t.pos + i)) in
        let acc = acc lor ((b land 0x7f) lsl shift) in
        if b < 0x80 then Some (acc, i + 1) else go (i + 1) (shift + 7) acc
    in
    go 0 0 0

  (* Consumed bytes are trimmed once they dominate the buffer, so a
     long-lived connection doesn't accumulate its whole history. *)
  let compact t =
    if t.pos > 4096 && t.pos * 2 > Buffer.length t.buf then begin
      let rest = Buffer.sub t.buf t.pos (Buffer.length t.buf - t.pos) in
      Buffer.clear t.buf;
      Buffer.add_string t.buf rest;
      t.pos <- 0
    end

  let pop t =
    match try_varint t with
    | None ->
        if buffered t > 10 then Error "unterminated frame length"
        else Ok None
    | Some (len, hdr) ->
        if len < 0 || len > t.max_frame then
          Error (Printf.sprintf "frame length %d exceeds limit" len)
        else if buffered t < hdr + len then Ok None
        else begin
          let payload = Buffer.sub t.buf (t.pos + hdr) len in
          t.pos <- t.pos + hdr + len;
          compact t;
          Ok (Some payload)
        end
end
