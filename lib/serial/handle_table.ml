(* Per-link negotiated type-handle tables.

   The sender assigns a small monotonically increasing integer to every
   distinct type entry it ships on a link; the first envelope carrying
   the type binds handle and entry together ([`Bind]), later envelopes
   ship only the handle ([`Ref]). The receiver keeps a bounded table of
   learned bindings. Handles are never reused — after a sender-side
   reset the counter keeps counting, so a stale binding on the other end
   can only miss (and trigger renegotiation), never alias a different
   type. Correctness never depends on the table: an unknown handle is
   NAKed and the sender re-binds it, and the envelope's semantic digest
   rejects any binding that drifted from the sender's. *)

module Fnv = Pti_util.Fnv
module Guid = Pti_util.Guid

(* ------------------------------ sender ----------------------------- *)

type sender = {
  mutable next_handle : int;
  by_entry : (Envelope.type_entry, int) Hashtbl.t;
  by_handle : (int, Envelope.type_entry) Hashtbl.t;
      (* Reverse map: rebuilding a NAKed binding needs the full entry
         without retaining any envelope. *)
}

let create_sender () =
  { next_handle = 1; by_entry = Hashtbl.create 16; by_handle = Hashtbl.create 16 }

let obtain s entry =
  match Hashtbl.find_opt s.by_entry entry with
  | Some h -> `Known h
  | None ->
      let h = s.next_handle in
      s.next_handle <- h + 1;
      Hashtbl.replace s.by_entry entry h;
      Hashtbl.replace s.by_handle h entry;
      `Fresh h

let entry_for s h = Hashtbl.find_opt s.by_handle h

let reset_sender s =
  Hashtbl.reset s.by_entry;
  Hashtbl.reset s.by_handle

(* ----------------------------- receiver ---------------------------- *)

module ILru = Pti_obs.Lru.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

type receiver = Envelope.type_entry ILru.t

let create_receiver ~capacity : receiver = ILru.create ~capacity ()
let install (r : receiver) h entry = ILru.put r h entry
let resolve (r : receiver) h = ILru.find r h
let clear_receiver (r : receiver) = ILru.clear r
let receiver_length (r : receiver) = ILru.length r

(* The peer's shared flyweight pool recycles receiver tables across
   sessions; pooling is only sound between tables of equal capacity. *)
let receiver_capacity (r : receiver) = ILru.capacity r

(* ----------------------------- fingerprints ------------------------ *)

(* Deterministic digests of table state for the model checker's
   state-hash pruning: bindings rendered sorted by handle, FNV-1a over
   the text. Two tables with the same bindings hash equal regardless of
   the order they were learned in. *)

let render_binding buf h (e : Envelope.type_entry) =
  Buffer.add_string buf
    (Printf.sprintf "%d=%s/%s/%s/%s%s\n" h e.Envelope.te_name
       (Guid.to_string e.Envelope.te_guid)
       e.Envelope.te_assembly e.Envelope.te_download_path
       (* Version 0 renders as before so pre-evolution fingerprints are
          unchanged. *)
       (if e.Envelope.te_version > 0 then
          Printf.sprintf "@v%d" e.Envelope.te_version
        else ""))

let fingerprint_sender s =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "next=%d\n" s.next_handle);
  Hashtbl.fold (fun h e acc -> (h, e) :: acc) s.by_handle []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (h, e) -> render_binding buf h e);
  Fnv.hash64 (Buffer.contents buf)

let fingerprint_receiver (r : receiver) =
  let buf = Buffer.create 128 in
  ILru.fold r ~init:[] ~f:(fun h e acc -> (h, e) :: acc)
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (h, e) -> render_binding buf h e);
  Fnv.hash64 (Buffer.contents buf)

(* --------------------------- bind frames --------------------------- *)

(* [Handle_bind] control messages carry renegotiated bindings in a
   checksummed binary frame (magic, 8-byte FNV-1a of the body, body) so
   the chaos harness's frame-integrity filter can vet them without
   structural parsing. *)

module W = Bytes_io.Writer
module R = Bytes_io.Reader

let bind_magic = "PTIH\x01"
let header_len = String.length bind_magic + 8

let encode_bindings binds =
  let w = W.create () in
  W.varint w (List.length binds);
  List.iter
    (fun (h, e) ->
      W.varint w h;
      W.string w e.Envelope.te_name;
      W.string w (Guid.to_string e.Envelope.te_guid);
      W.string w e.Envelope.te_assembly;
      W.string w e.Envelope.te_download_path)
    binds;
  (* Trailing version block, one varint per binding in frame order —
     emitted only when some binding is versioned, so pre-evolution
     frames stay byte-identical (decoders probe with [at_end]). *)
  if List.exists (fun (_, e) -> e.Envelope.te_version > 0) binds then
    List.iter (fun (_, e) -> W.varint w e.Envelope.te_version) binds;
  let body = W.contents w in
  bind_magic ^ Fnv.hash_bytes body ^ body

let checked_body s =
  if String.length s < header_len then Error "truncated bind frame"
  else if
    not (String.equal (String.sub s 0 (String.length bind_magic)) bind_magic)
  then Error "bad bind-frame magic"
  else
    let sum = String.sub s (String.length bind_magic) 8 in
    let body = String.sub s header_len (String.length s - header_len) in
    if not (String.equal sum (Fnv.hash_bytes body)) then
      Error "bind-frame checksum mismatch"
    else Ok body

let decode_bindings s =
  match checked_body s with
  | Error _ as e -> e
  | Ok body -> (
      try
        let r = R.create body in
        let n = R.varint r in
        if n < 0 || n > 100_000 then Error "bad binding count"
        else begin
          let out = ref [] in
          let bad = ref None in
          (try
             for _ = 1 to n do
               let h = R.varint r in
               let te_name = R.string r in
               let guid_s = R.string r in
               let te_assembly = R.string r in
               let te_download_path = R.string r in
               match Guid.of_string guid_s with
               | None -> bad := Some (Printf.sprintf "bad guid %S" guid_s)
               | Some te_guid ->
                   out :=
                     ( h,
                       {
                         Envelope.te_name;
                         te_guid;
                         te_assembly;
                         te_download_path;
                         te_version = 0;
                       } )
                     :: !out
             done;
             (* Trailing version block (absent on pre-evolution frames).
                [!out] is reversed; versions are consumed in frame order,
                so patch over the re-reversed list with explicit
                recursion. *)
             if (not (R.at_end r)) && !bad = None then begin
               let rec patch acc = function
                 | [] -> acc
                 | (h, e) :: rest ->
                     patch
                       ((h, { e with Envelope.te_version = R.varint r })
                       :: acc)
                       rest
               in
               out := patch [] (List.rev !out)
             end
           with R.Underflow m -> bad := Some m);
          match !bad with
          | Some m -> Error m
          | None ->
              if R.at_end r then Ok (List.rev !out)
              else Error "trailing bytes in bind frame"
        end
      with R.Underflow m -> Error m)

let bindings_intact s = Result.is_ok (checked_body s)
