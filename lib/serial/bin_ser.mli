(** Compact binary object-graph serializer — the paper's "binary
    serialization" payload option (§6.2).

    Handles shared references and cycles through per-graph object ids, and
    interns class and field names in a string table. Like the platform
    serializers the paper discusses (§5.2), {e decoding requires the
    object's classes to be loaded}: decoding against a registry missing a
    class fails with [Unknown_type], which is what forces the protocol to
    download code first. *)

open Pti_cts

type error =
  | Malformed of string
  | Unknown_type of string  (** Qualified class name not in the registry. *)
  | Corrupt of string
      (** The 8-byte FNV-1a checksum after the magic does not match the
          body — the bytes were damaged in transit. Reported before any
          structural parsing, so a flipped byte can never surface as a
          mangled value. *)

val pp_error : Format.formatter -> error -> unit

val encode : Value.value -> string
(** Proxies are serialized through their wrapped target (a proxy is a local
    artifact; what travels is the real object).
    @raise Invalid_argument if the graph contains no serializable form. *)

val decode : ?resolve:(string -> Meta.class_def option) -> Registry.t ->
  string -> (Value.value, error) result
(** Rebuilds the graph with fresh object ids. Fields not declared by the
    (loaded) class are dropped; declared fields missing from the payload
    keep their default values. [resolve] overrides class-by-name lookup
    (default [Registry.find reg]) — the envelope layer passes a
    version-pinned resolver so an upgraded registry still decodes
    in-flight payloads against the version they were encoded with. *)

val class_names : string -> (string list, error) result
(** The distinct class names mentioned by an encoded payload, without
    decoding values — how a receiver learns what it must resolve. *)
