(* Multi-envelope batch frames.

   The peer coalesces same-destination object sends that happen within
   one simulator instant into a single framed message, amortising
   per-message framing and ARQ/ack overhead. Each part is a complete
   [Obj_msg] worth of content (envelope plus any eager extras); gossip
   digests can ride along as opportunistic piggyback. The frame is
   checksummed (magic, 8-byte FNV-1a of the body, body) so wire damage
   is detected at the frame boundary and handled by retransmission,
   exactly like the binary payload codec. *)

module Fnv = Pti_util.Fnv
module W = Bytes_io.Writer
module R = Bytes_io.Reader

type part = {
  p_envelope : string;
  p_tdescs : string list;
  p_assemblies : string list;
}

type t = {
  parts : part list;
  piggyback : (string * string) list;  (** Gossip [(kind, body)] pairs. *)
}

let magic = "PTIF\x01"
let header_len = String.length magic + 8

let encode t =
  let w = W.create () in
  W.varint w (List.length t.parts);
  List.iter
    (fun p ->
      W.string w p.p_envelope;
      Framing.write_string_list w p.p_tdescs;
      Framing.write_string_list w p.p_assemblies)
    t.parts;
  W.varint w (List.length t.piggyback);
  List.iter
    (fun (kind, body) ->
      W.string w kind;
      W.string w body)
    t.piggyback;
  let body = W.contents w in
  magic ^ Fnv.hash_bytes body ^ body

let checked_body s =
  if String.length s < header_len then Error "truncated batch frame"
  else if not (String.equal (String.sub s 0 (String.length magic)) magic) then
    Error "bad batch-frame magic"
  else
    let sum = String.sub s (String.length magic) 8 in
    let body = String.sub s header_len (String.length s - header_len) in
    if not (String.equal sum (Fnv.hash_bytes body)) then
      Error "batch-frame checksum mismatch"
    else Ok body

let read_list = Framing.read_list

let decode s =
  match checked_body s with
  | Error _ as e -> e
  | Ok body -> (
      try
        let r = R.create body in
        let parts =
          read_list r (fun r ->
              let p_envelope = R.string r in
              let p_tdescs = read_list r R.string in
              let p_assemblies = read_list r R.string in
              { p_envelope; p_tdescs; p_assemblies })
        in
        let piggyback =
          read_list r (fun r ->
              let kind = R.string r in
              let body = R.string r in
              (kind, body))
        in
        if R.at_end r then Ok { parts; piggyback }
        else Error "trailing bytes in batch frame"
      with
      | R.Underflow m -> Error m
      | Failure m -> Error m)

let intact s = Result.is_ok (checked_body s)
