open Pti_cts
module Xml = Pti_xml.Xml
module Guid = Pti_util.Guid
module S = Pti_util.Strutil

let ( let* ) = Result.bind

(* --- expressions ------------------------------------------------------ *)

let binop_of_string s =
  List.find_opt
    (fun op -> String.equal (Expr.binop_name op) s)
    [
      Expr.Add; Expr.Sub; Expr.Mul; Expr.Div; Expr.Mod; Expr.Eq; Expr.Neq;
      Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge; Expr.And; Expr.Or; Expr.Concat;
    ]

let unop_of_string s =
  List.find_opt
    (fun op -> String.equal (Expr.unop_name op) s)
    [ Expr.Neg; Expr.Not ]

let rec expr_to_xml e =
  let open Xml in
  match e with
  | Expr.Const Expr.Cnull -> elt "null" []
  | Expr.Const (Expr.Cbool b) ->
      elt "bool" ~attrs:[ ("v", string_of_bool b) ] []
  | Expr.Const (Expr.Cint i) -> elt "int" ~attrs:[ ("v", string_of_int i) ] []
  | Expr.Const (Expr.Cfloat f) ->
      elt "float" ~attrs:[ ("v", Printf.sprintf "%h" f) ] []
  | Expr.Const (Expr.Cstring s) -> elt "str" ~attrs:[ ("v", s) ] []
  | Expr.Const (Expr.Cchar c) ->
      elt "chr" ~attrs:[ ("v", string_of_int (Char.code c)) ] []
  | Expr.This -> elt "this" []
  | Expr.Var v -> elt "var" ~attrs:[ ("name", v) ] []
  | Expr.Let (v, e1, e2) ->
      elt "let" ~attrs:[ ("name", v) ] [ expr_to_xml e1; expr_to_xml e2 ]
  | Expr.Assign (v, e1) ->
      elt "assign" ~attrs:[ ("name", v) ] [ expr_to_xml e1 ]
  | Expr.Field_get (o, f) ->
      elt "fget" ~attrs:[ ("field", f) ] [ expr_to_xml o ]
  | Expr.Field_set (o, f, v) ->
      elt "fset" ~attrs:[ ("field", f) ] [ expr_to_xml o; expr_to_xml v ]
  | Expr.Call (o, m, args) ->
      elt "call" ~attrs:[ ("name", m) ] (List.map expr_to_xml (o :: args))
  | Expr.Static_call (c, m, args) ->
      elt "scall" ~attrs:[ ("class", c); ("name", m) ]
        (List.map expr_to_xml args)
  | Expr.New (c, args) ->
      elt "new" ~attrs:[ ("class", c) ] (List.map expr_to_xml args)
  | Expr.New_array (ty, items) ->
      elt "newarr" ~attrs:[ ("type", Ty.to_string ty) ]
        (List.map expr_to_xml items)
  | Expr.Index_get (a, i) -> elt "aget" [ expr_to_xml a; expr_to_xml i ]
  | Expr.Index_set (a, i, v) ->
      elt "aset" [ expr_to_xml a; expr_to_xml i; expr_to_xml v ]
  | Expr.Array_length a -> elt "alen" [ expr_to_xml a ]
  | Expr.If (c, t, e) ->
      elt "if" [ expr_to_xml c; expr_to_xml t; expr_to_xml e ]
  | Expr.While (c, b) -> elt "while" [ expr_to_xml c; expr_to_xml b ]
  | Expr.Seq es -> elt "seq" (List.map expr_to_xml es)
  | Expr.Binop (op, a, b) ->
      elt "binop" ~attrs:[ ("op", Expr.binop_name op) ]
        [ expr_to_xml a; expr_to_xml b ]
  | Expr.Unop (op, a) ->
      elt "unop" ~attrs:[ ("op", Expr.unop_name op) ] [ expr_to_xml a ]
  | Expr.Throw a -> elt "throw" [ expr_to_xml a ]
  | Expr.Try (b, v, h) ->
      elt "try" ~attrs:[ ("var", v) ] [ expr_to_xml b; expr_to_xml h ]

let attr name x =
  match Xml.attr name x with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing attribute %S" name)

let elements x =
  List.filter (function Xml.Element _ -> true | _ -> false) (Xml.children x)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let rec expr_of_xml x =
  let kids () = map_result expr_of_xml (elements x) in
  match Xml.tag x with
  | Some "null" -> Ok Expr.null
  | Some "bool" ->
      let* v = attr "v" x in
      (match bool_of_string_opt v with
      | Some b -> Ok (Expr.bool b)
      | None -> Error "bad bool")
  | Some "int" ->
      let* v = attr "v" x in
      (match int_of_string_opt v with
      | Some i -> Ok (Expr.int i)
      | None -> Error "bad int")
  | Some "float" ->
      let* v = attr "v" x in
      (match float_of_string_opt v with
      | Some f -> Ok (Expr.Const (Expr.Cfloat f))
      | None -> Error "bad float")
  | Some "str" ->
      let* v = attr "v" x in
      Ok (Expr.str v)
  | Some "chr" ->
      let* v = attr "v" x in
      (match int_of_string_opt v with
      | Some c when c >= 0 && c < 256 -> Ok (Expr.Const (Expr.Cchar (Char.chr c)))
      | _ -> Error "bad chr")
  | Some "this" -> Ok Expr.This
  | Some "var" ->
      let* name = attr "name" x in
      Ok (Expr.Var name)
  | Some "let" -> (
      let* name = attr "name" x in
      let* ks = kids () in
      match ks with
      | [ e1; e2 ] -> Ok (Expr.Let (name, e1, e2))
      | _ -> Error "let expects 2 children")
  | Some "assign" -> (
      let* name = attr "name" x in
      let* ks = kids () in
      match ks with
      | [ e1 ] -> Ok (Expr.Assign (name, e1))
      | _ -> Error "assign expects 1 child")
  | Some "fget" -> (
      let* field = attr "field" x in
      let* ks = kids () in
      match ks with
      | [ o ] -> Ok (Expr.Field_get (o, field))
      | _ -> Error "fget expects 1 child")
  | Some "fset" -> (
      let* field = attr "field" x in
      let* ks = kids () in
      match ks with
      | [ o; v ] -> Ok (Expr.Field_set (o, field, v))
      | _ -> Error "fset expects 2 children")
  | Some "call" -> (
      let* name = attr "name" x in
      let* ks = kids () in
      match ks with
      | recv :: args -> Ok (Expr.Call (recv, name, args))
      | [] -> Error "call expects a receiver")
  | Some "scall" ->
      let* cls = attr "class" x in
      let* name = attr "name" x in
      let* args = kids () in
      Ok (Expr.Static_call (cls, name, args))
  | Some "new" ->
      let* cls = attr "class" x in
      let* args = kids () in
      Ok (Expr.New (cls, args))
  | Some "newarr" -> (
      let* ty_s = attr "type" x in
      match Ty.of_string ty_s with
      | None -> Error "bad array type"
      | Some ty ->
          let* items = kids () in
          Ok (Expr.New_array (ty, items)))
  | Some "aget" -> (
      let* ks = kids () in
      match ks with
      | [ a; i ] -> Ok (Expr.Index_get (a, i))
      | _ -> Error "aget expects 2 children")
  | Some "aset" -> (
      let* ks = kids () in
      match ks with
      | [ a; i; v ] -> Ok (Expr.Index_set (a, i, v))
      | _ -> Error "aset expects 3 children")
  | Some "alen" -> (
      let* ks = kids () in
      match ks with
      | [ a ] -> Ok (Expr.Array_length a)
      | _ -> Error "alen expects 1 child")
  | Some "if" -> (
      let* ks = kids () in
      match ks with
      | [ c; t; e ] -> Ok (Expr.If (c, t, e))
      | _ -> Error "if expects 3 children")
  | Some "while" -> (
      let* ks = kids () in
      match ks with
      | [ c; b ] -> Ok (Expr.While (c, b))
      | _ -> Error "while expects 2 children")
  | Some "seq" ->
      let* ks = kids () in
      Ok (Expr.Seq ks)
  | Some "binop" -> (
      let* op_s = attr "op" x in
      match binop_of_string op_s with
      | None -> Error (Printf.sprintf "bad binop %S" op_s)
      | Some op -> (
          let* ks = kids () in
          match ks with
          | [ a; b ] -> Ok (Expr.Binop (op, a, b))
          | _ -> Error "binop expects 2 children"))
  | Some "unop" -> (
      let* op_s = attr "op" x in
      match unop_of_string op_s with
      | None -> Error (Printf.sprintf "bad unop %S" op_s)
      | Some op -> (
          let* ks = kids () in
          match ks with
          | [ a ] -> Ok (Expr.Unop (op, a))
          | _ -> Error "unop expects 1 child"))
  | Some "throw" -> (
      let* ks = kids () in
      match ks with
      | [ a ] -> Ok (Expr.Throw a)
      | _ -> Error "throw expects 1 child")
  | Some "try" -> (
      let* var = attr "var" x in
      let* ks = kids () in
      match ks with
      | [ b; h ] -> Ok (Expr.Try (b, var, h))
      | _ -> Error "try expects 2 children")
  | Some other -> Error (Printf.sprintf "unknown expression tag <%s>" other)
  | None -> Error "expected an element"

(* --- classes ---------------------------------------------------------- *)

let mods_attrs (m : Meta.member_mods) =
  [
    ("visibility", Meta.visibility_to_string m.Meta.visibility);
    ("static", string_of_bool m.Meta.static);
    ("virtual", string_of_bool m.Meta.virtual_);
  ]

let mods_of_xml x =
  let* vis_s = attr "visibility" x in
  let* visibility =
    match Meta.visibility_of_string vis_s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "bad visibility %S" vis_s)
  in
  let* st_s = attr "static" x in
  let* vt_s = attr "virtual" x in
  match bool_of_string_opt st_s, bool_of_string_opt vt_s with
  | Some static, Some virtual_ -> Ok { Meta.visibility; static; virtual_ }
  | _ -> Error "bad modifier booleans"

let params_to_xml ps =
  List.map
    (fun (p : Meta.param) ->
      Xml.elt "param"
        ~attrs:
          [ ("name", p.Meta.param_name); ("type", Ty.to_string p.Meta.param_ty) ]
        [])
    ps

let params_of_xml x =
  map_result
    (fun p ->
      let* name = attr "name" p in
      let* ty_s = attr "type" p in
      match Ty.of_string ty_s with
      | Some ty -> Ok { Meta.param_name = name; param_ty = ty }
      | None -> Error (Printf.sprintf "bad param type %S" ty_s))
    (Xml.childs "param" x)

let body_to_xml tag = function
  | None -> []
  | Some e -> [ Xml.elt tag [ expr_to_xml e ] ]

let body_of_xml tag x =
  match Xml.child tag x with
  | None -> Ok None
  | Some b -> (
      match elements b with
      | [ e ] ->
          let* expr = expr_of_xml e in
          Ok (Some expr)
      | _ -> Error (Printf.sprintf "<%s> expects one child" tag))

let class_to_xml (cd : Meta.class_def) =
  let open Xml in
  elt "class"
    ~attrs:
      [
        ("name", cd.Meta.td_name);
        ("namespace", String.concat "." cd.Meta.td_namespace);
        ("guid", Guid.to_string cd.Meta.td_guid);
        ("kind", Meta.kind_to_string cd.Meta.td_kind);
        ("assembly", cd.Meta.td_assembly);
      ]
    (List.concat
       [
         (match cd.Meta.td_super with
         | None -> []
         | Some s -> [ elt "super" ~attrs:[ ("name", s) ] [] ]);
         List.map
           (fun i -> elt "interface" ~attrs:[ ("name", i) ] [])
           cd.Meta.td_interfaces;
         List.map
           (fun (f : Meta.field_def) ->
             elt "field"
               ~attrs:
                 (("name", f.Meta.f_name)
                 :: ("type", Ty.to_string f.Meta.f_ty)
                 :: mods_attrs f.Meta.f_mods)
               (body_to_xml "init" f.Meta.f_init))
           cd.Meta.td_fields;
         List.map
           (fun (c : Meta.ctor_def) ->
             elt "constructor" ~attrs:(mods_attrs c.Meta.c_mods)
               (params_to_xml c.Meta.c_params @ body_to_xml "body" c.Meta.c_body))
           cd.Meta.td_ctors;
         List.map
           (fun (m : Meta.method_def) ->
             elt "method"
               ~attrs:
                 (("name", m.Meta.m_name)
                 :: ("return", Ty.to_string m.Meta.m_return)
                 :: mods_attrs m.Meta.m_mods)
               (params_to_xml m.Meta.m_params @ body_to_xml "body" m.Meta.m_body))
           cd.Meta.td_methods;
       ])

let class_of_xml x =
  match Xml.tag x with
  | Some "class" ->
      let* name = attr "name" x in
      let* ns_s = attr "namespace" x in
      let td_namespace = if ns_s = "" then [] else S.split_on '.' ns_s in
      let* guid_s = attr "guid" x in
      let* td_guid =
        match Guid.of_string guid_s with
        | Some g -> Ok g
        | None -> Error (Printf.sprintf "bad guid %S" guid_s)
      in
      let* kind_s = attr "kind" x in
      let* td_kind =
        match Meta.kind_of_string kind_s with
        | Some k -> Ok k
        | None -> Error (Printf.sprintf "bad kind %S" kind_s)
      in
      let* td_assembly = attr "assembly" x in
      let* td_super =
        match Xml.child "super" x with
        | None -> Ok None
        | Some s ->
            let* n = attr "name" s in
            Ok (Some n)
      in
      let* td_interfaces =
        map_result (attr "name") (Xml.childs "interface" x)
      in
      let* td_fields =
        map_result
          (fun f ->
            let* f_name = attr "name" f in
            let* ty_s = attr "type" f in
            let* f_ty =
              match Ty.of_string ty_s with
              | Some ty -> Ok ty
              | None -> Error (Printf.sprintf "bad field type %S" ty_s)
            in
            let* f_mods = mods_of_xml f in
            let* f_init = body_of_xml "init" f in
            Ok { Meta.f_name; f_ty; f_mods; f_init })
          (Xml.childs "field" x)
      in
      let* td_ctors =
        map_result
          (fun c ->
            let* c_params = params_of_xml c in
            let* c_mods = mods_of_xml c in
            let* c_body = body_of_xml "body" c in
            Ok { Meta.c_params; c_mods; c_body })
          (Xml.childs "constructor" x)
      in
      let* td_methods =
        map_result
          (fun m ->
            let* m_name = attr "name" m in
            let* ret_s = attr "return" m in
            let* m_return =
              match Ty.of_string ret_s with
              | Some ty -> Ok ty
              | None -> Error (Printf.sprintf "bad return type %S" ret_s)
            in
            let* m_params = params_of_xml m in
            let* m_mods = mods_of_xml m in
            let* m_body = body_of_xml "body" m in
            Ok { Meta.m_name; m_params; m_return; m_mods; m_body })
          (Xml.childs "method" x)
      in
      Ok
        {
          Meta.td_name = name;
          td_namespace;
          td_guid;
          td_kind;
          td_super;
          td_interfaces;
          td_fields;
          td_ctors;
          td_methods;
          td_assembly;
        }
  | Some other -> Error (Printf.sprintf "expected <class>, got <%s>" other)
  | None -> Error "expected an element"

(* --- assemblies ------------------------------------------------------- *)

let to_xml (a : Assembly.t) =
  Xml.elt "assembly"
    ~attrs:
      [
        ("name", a.Assembly.asm_name);
        ("version", string_of_int a.Assembly.asm_version);
      ]
    (List.map
       (fun r -> Xml.elt "requires" ~attrs:[ ("name", r) ] [])
       a.Assembly.asm_requires
    @ List.map class_to_xml a.Assembly.asm_classes)

let of_xml x =
  match Xml.tag x with
  | Some "assembly" ->
      let* name = attr "name" x in
      let* version_s = attr "version" x in
      let* version =
        match int_of_string_opt version_s with
        | Some v -> Ok v
        | None -> Error "bad version"
      in
      let* requires = map_result (attr "name") (Xml.childs "requires" x) in
      let* classes = map_result class_of_xml (Xml.childs "class" x) in
      Ok
        {
          Assembly.asm_name = name;
          asm_version = version;
          asm_classes = classes;
          asm_requires = requires;
        }
  | Some other -> Error (Printf.sprintf "expected <assembly>, got <%s>" other)
  | None -> Error "expected an element"

(* Wire strings carry an integrity digest over the canonical rendering:
   a byte flip that still parses as a (different) assembly would load
   mangled code, so corruption must be caught before loading. *)
let to_string a = Xml.to_string (Pti_xml.Digest_attr.add (to_xml a))

let of_string s =
  match Xml.parse s with
  | Error e -> Error (Format.asprintf "%a" Xml.pp_error e)
  | Ok x -> (
      match Pti_xml.Digest_attr.verify x with
      | Error e -> Error ("corrupt assembly: " ^ e)
      | Ok x -> of_xml x)
