(** The hybrid XML message of Figure 3.

    What actually travels when an object is sent: a human-readable XML
    envelope listing, for every class occurring in the object graph, its
    name, GUID, assembly and download path — plus the serialized object
    itself as an embedded SOAP element or a base64 binary blob. Crucially
    the envelope does {e not} carry the type description or the code; those
    are fetched on demand (the optimistic protocol). *)

open Pti_cts

type codec = Soap | Binary

type type_entry = {
  te_name : string;  (** Qualified class name. *)
  te_guid : Pti_util.Guid.t;
  te_assembly : string;
  te_download_path : string;  (** Where the implementation can be fetched. *)
  te_version : int;
      (** Version of the carrying assembly on its publisher's chain;
          [0] = unversioned (pre-evolution sender). Version 0 is absent
          from canonical bytes, XML attributes and wire frames, so
          pre-evolution envelopes are byte-identical in both
          directions. *)
}

type payload = Psoap of Pti_xml.Xml.t | Pbinary of string

type t = { env_types : type_entry list; env_payload : payload }

type error =
  | Malformed of string
  | Unknown_type of string
  | Corrupt of string
      (** The integrity digest did not match — the envelope (or its
          binary payload's checksum) was damaged on the wire. Decoding
          never yields a mangled value: corruption surfaces here. *)
  | Unknown_handles of int list
      (** A handle-encoded envelope referenced handles the receiver's
          link table cannot resolve (cold cache, restart, eviction) —
          the signal that triggers renegotiation, never a failure of
          the payload itself. *)

val pp_error : Format.formatter -> error -> unit

val digest : t -> string
(** FNV-1a (hex) over the envelope's canonical content — every type
    entry field plus the serialized payload bytes. Written as a
    [digest] attribute by {!to_xml}; {!of_xml} recomputes and compares
    when the attribute is present (envelopes without one are accepted,
    for pre-digest peers). *)

val make : ?version_of:(assembly:string -> int) -> Registry.t ->
  codec:codec -> download_path:(assembly:string -> string) ->
  Value.value -> t
(** Serializes the value with the chosen codec and collects a [type_entry]
    per distinct class in the graph (graph order). [version_of] supplies
    the published chain version per assembly (default: 0, unversioned).
    @raise Invalid_argument if a class in the graph is not registered on
    the sending host. *)

val required_classes : t -> string list
(** Names the receiver must have loaded before the payload can decode. *)

val payload_codec : t -> codec

val decode_payload : Registry.t -> t -> (Value.value, error) result
(** Fails with [Unknown_type] when a class is not (yet) loaded — the signal
    that triggers the download subprotocol. Classes named by the
    envelope's type entries decode {e version-pinned}: resolution goes by
    the entry's GUID first and falls back to by-name lookup only when
    that GUID was never registered — so a receiver that upgraded a type
    mid-flight still decodes old envelopes against the old version (the
    upgrade-safety invariant), while pre-evolution registries (where name
    and GUID agree) behave exactly as before. *)

val to_xml : t -> Pti_xml.Xml.t
val of_xml : Pti_xml.Xml.t -> (t, error) result
val to_string : t -> string
val of_string : string -> (t, error) result

val size_bytes : t -> int

(** {2 Negotiated type handles}

    Wire-efficiency layer: after first contact, a type entry on a link
    is a small integer. [`Bind h] ships the full entry together with
    its assigned handle (first use), [`Ref h] ships only the handle,
    [`Plain] is the classic self-describing form. Handle-encoded
    envelopes carry two digests: the semantic [digest] over the fully
    reconstructed envelope (a drifted table binding can never deliver a
    mis-typed payload) and a [wire] digest over the literal document
    (frame integrity without a table). *)

type handle_form = [ `Plain | `Bind of int | `Ref of int ]

val to_string_h : t -> form:(type_entry -> handle_form) -> string
(** Renders with the per-entry form chosen by [form] — typically a
    lookup in the sender side of a {!Handle_table} — as a compact
    checksummed binary frame ([PTIE] magic, raw payload bytes, no
    base64). The checksum plays the wire-digest role; the embedded raw
    semantic digest plays the [digest]-attribute role. *)

val to_string_h_xml : t -> form:(type_entry -> handle_form) -> string
(** The same handle encoding in the XML wire form (a [wire] digest
    attribute plus [<typeref handle="n"/>] elements) — the interop
    fallback; {!of_string_h} accepts both. *)

val of_string_h :
  resolve:(int -> type_entry option) ->
  string ->
  (t * (int * type_entry) list, error) result
(** Parses either classic or handle-encoded envelopes. [resolve]
    consults the receiver's link table; bindings shipped in the same
    envelope are visible to its own refs. On success also returns the
    new bindings so the caller can install them. Fails with
    {!Unknown_handles} when refs cannot be resolved (wire-intact — the
    caller should NAK and park), with [Corrupt] on digest mismatch. *)

val wire_ok : string -> bool
(** Frame-level integrity probe: the document parses and its wire (or,
    for classic envelopes, semantic) digest matches. Unknown handles
    are a table condition, not wire damage, and leave the frame ok. *)
