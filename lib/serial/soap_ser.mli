(** SOAP-style XML object-graph serializer (§6.2).

    Mirrors SOAP section-5 encoding in miniature: every object is an
    element carrying an [id]; repeated occurrences become [<ref href>]
    elements (multi-ref), which also makes cycles serializable. Encoding
    walks the object graph and builds an XML tree, so it is markedly more
    expensive than decoding — the asymmetry the paper measures in §7.3. *)

open Pti_cts

type error =
  | Malformed of string
  | Unknown_type of string

val pp_error : Format.formatter -> error -> unit

val encode_xml : Value.value -> Pti_xml.Xml.t
val encode : Value.value -> string
(** The XML text of {!encode_xml}, wrapped in a [<soap:Envelope>]. *)

val decode_xml : ?resolve:(string -> Meta.class_def option) -> Registry.t ->
  Pti_xml.Xml.t -> (Value.value, error) result
val decode : ?resolve:(string -> Meta.class_def option) -> Registry.t ->
  string -> (Value.value, error) result
(** [resolve] overrides class-by-name lookup (default [Registry.find reg]);
    see {!Bin_ser.decode}. *)

val class_names : Pti_xml.Xml.t -> string list
(** Distinct class names mentioned by an encoded payload element. *)
