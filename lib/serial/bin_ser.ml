open Pti_cts
module W = Bytes_io.Writer
module R = Bytes_io.Reader

type error = Malformed of string | Unknown_type of string | Corrupt of string

let pp_error ppf = function
  | Malformed m -> Format.fprintf ppf "malformed binary payload: %s" m
  | Unknown_type t -> Format.fprintf ppf "unknown type %S" t
  | Corrupt m -> Format.fprintf ppf "corrupt binary payload: %s" m

let magic = "PTIB\x02"

(* Wire layout: magic, 8-byte FNV-1a checksum of the body, body. The
   checksum distinguishes wire corruption ([Corrupt]) from structural
   nonsense ([Malformed]) before any value is materialized. *)
let header_len = String.length magic + 8

let checked_body s =
  if String.length s < header_len then Error (Malformed "truncated header")
  else if not (String.equal (String.sub s 0 (String.length magic)) magic) then
    Error (Malformed "bad magic")
  else
    let sum = String.sub s (String.length magic) 8 in
    let body = String.sub s header_len (String.length s - header_len) in
    if not (String.equal sum (Pti_util.Fnv.hash_bytes body)) then
      Error (Corrupt "checksum mismatch")
    else Ok body

(* Value tags. *)
let t_null = 0
and t_bool = 1
and t_int = 2
and t_float = 3
and t_string = 4
and t_char = 5
and t_obj = 6
and t_ref = 7
and t_arr = 8

type intern = {
  w : W.t;
  names : (string, int) Hashtbl.t;
  mutable next_name : int;
  seen : (int, int) Hashtbl.t;  (* oid -> wire id *)
  mutable next_id : int;
}

let intern_name st s =
  match Hashtbl.find_opt st.names s with
  | Some i -> W.varint st.w i
  | None ->
      let i = st.next_name in
      st.next_name <- i + 1;
      Hashtbl.add st.names s i;
      W.varint st.w i;
      (* First occurrence carries the text inline. *)
      W.string st.w s

let rec strip = function Value.Vproxy p -> strip p.Value.px_target | v -> v

let rec write st v =
  match strip v with
  | Value.Vnull -> W.u8 st.w t_null
  | Value.Vbool b ->
      W.u8 st.w t_bool;
      W.bool st.w b
  | Value.Vint i ->
      W.u8 st.w t_int;
      W.zigzag st.w i
  | Value.Vfloat f ->
      W.u8 st.w t_float;
      W.f64 st.w f
  | Value.Vstring s ->
      W.u8 st.w t_string;
      W.string st.w s
  | Value.Vchar c ->
      W.u8 st.w t_char;
      W.u8 st.w (Char.code c)
  | Value.Varr a ->
      W.u8 st.w t_arr;
      W.string st.w (Ty.to_string a.Value.elem_ty);
      W.varint st.w (Array.length a.Value.items);
      Array.iter (write st) a.Value.items
  | Value.Vobj o -> (
      match Hashtbl.find_opt st.seen o.Value.oid with
      | Some id ->
          W.u8 st.w t_ref;
          W.varint st.w id
      | None ->
          let id = st.next_id in
          st.next_id <- id + 1;
          Hashtbl.add st.seen o.Value.oid id;
          W.u8 st.w t_obj;
          W.varint st.w id;
          intern_name st o.Value.cls;
          let bindings =
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) o.Value.fields []
            |> List.sort (fun (a, _) (b, _) -> String.compare a b)
          in
          W.varint st.w (List.length bindings);
          List.iter
            (fun (k, v) ->
              intern_name st k;
              write st v)
            bindings)
  | Value.Vproxy _ -> assert false

let encode v =
  let st =
    {
      w = W.create ();
      names = Hashtbl.create 16;
      next_name = 0;
      seen = Hashtbl.create 16;
      next_id = 0;
    }
  in
  write st v;
  let body = W.contents st.w in
  magic ^ Pti_util.Fnv.hash_bytes body ^ body

type outern = {
  r : R.t;
  rev_names : (int, string) Hashtbl.t;
  objects : (int, Value.obj) Hashtbl.t;
}

let read_name st =
  let i = R.varint st.r in
  match Hashtbl.find_opt st.rev_names i with
  | Some s -> s
  | None ->
      let s = R.string st.r in
      Hashtbl.add st.rev_names i s;
      s

exception Unknown of string

let rec read ?resolve reg st =
  let resolve =
    match resolve with Some f -> f | None -> Registry.find reg
  in
  let tag = R.u8 st.r in
  if tag = t_null then Value.Vnull
  else if tag = t_bool then Value.Vbool (R.bool st.r)
  else if tag = t_int then Value.Vint (R.zigzag st.r)
  else if tag = t_float then Value.Vfloat (R.f64 st.r)
  else if tag = t_string then Value.Vstring (R.string st.r)
  else if tag = t_char then Value.Vchar (Char.chr (R.u8 st.r land 0xff))
  else if tag = t_arr then begin
    let ty_s = R.string st.r in
    let elem_ty =
      match Ty.of_string ty_s with
      | Some ty -> ty
      | None -> raise (R.Underflow (Printf.sprintf "bad type %S" ty_s))
    in
    let n = R.varint st.r in
    if n < 0 || n > 10_000_000 then raise (R.Underflow "absurd array length");
    let items = Array.init n (fun _ -> read ~resolve reg st) in
    Value.Varr { Value.elem_ty; items }
  end
  else if tag = t_ref then begin
    let id = R.varint st.r in
    match Hashtbl.find_opt st.objects id with
    | Some o -> Value.Vobj o
    | None -> raise (R.Underflow (Printf.sprintf "dangling object ref %d" id))
  end
  else if tag = t_obj then begin
    let id = R.varint st.r in
    let cls = read_name st in
    let cd =
      match resolve cls with
      | Some cd -> cd
      | None -> raise (Unknown cls)
    in
    let o =
      { Value.oid = Value.fresh_oid (); cls = Meta.qualified_name cd;
        fields = Hashtbl.create 8 }
    in
    (* Install declared defaults first so missing payload fields are sane. *)
    List.iter
      (fun f ->
        Value.set_field o f.Meta.f_name (Value.default_of f.Meta.f_ty))
      (Registry.all_fields reg cd);
    Hashtbl.add st.objects id o;
    let n = R.varint st.r in
    for _ = 1 to n do
      let fname = read_name st in
      let v = read ~resolve reg st in
      (* Drop fields the loaded class does not declare. *)
      if Registry.find_field reg cd fname <> None then
        Value.set_field o fname v
    done;
    Value.Vobj o
  end
  else raise (R.Underflow (Printf.sprintf "unknown tag %d" tag))

let decode ?resolve reg s =
  match checked_body s with
  | Error e -> Error e
  | Ok body -> (
      let st =
        { r = R.create body; rev_names = Hashtbl.create 16;
          objects = Hashtbl.create 16 }
      in
      try
        let v = read ?resolve reg st in
        if not (R.at_end st.r) then Error (Malformed "trailing bytes")
        else Ok v
      with
      | R.Underflow m -> Error (Malformed m)
      | Unknown cls -> Error (Unknown_type cls))

(* Walk the payload structure without materializing values. *)
let class_names_body body =
  let st =
    { r = R.create body; rev_names = Hashtbl.create 16;
      objects = Hashtbl.create 16 }
  in
  let found = ref [] in
  let rec skip () =
    let tag = R.u8 st.r in
    if tag = t_null then ()
    else if tag = t_bool then ignore (R.bool st.r)
    else if tag = t_int then ignore (R.zigzag st.r)
    else if tag = t_float then ignore (R.f64 st.r)
    else if tag = t_string then ignore (R.string st.r)
    else if tag = t_char then ignore (R.u8 st.r)
    else if tag = t_arr then begin
      ignore (R.string st.r);
      let n = R.varint st.r in
      for _ = 1 to n do
        skip ()
      done
    end
    else if tag = t_ref then ignore (R.varint st.r)
    else if tag = t_obj then begin
      ignore (R.varint st.r);
      let cls = read_name st in
      if not (List.exists (String.equal cls) !found) then
        found := cls :: !found;
      let n = R.varint st.r in
      for _ = 1 to n do
        ignore (read_name st);
        skip ()
      done
    end
    else raise (R.Underflow (Printf.sprintf "unknown tag %d" tag))
  in
  try
    skip ();
    Ok (List.rev !found)
  with R.Underflow m -> Error (Malformed m)

let class_names s =
  match checked_body s with
  | Error e -> Error e
  | Ok body -> class_names_body body
