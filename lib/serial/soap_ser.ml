open Pti_cts
module Xml = Pti_xml.Xml

type error = Malformed of string | Unknown_type of string

let pp_error ppf = function
  | Malformed m -> Format.fprintf ppf "malformed SOAP payload: %s" m
  | Unknown_type t -> Format.fprintf ppf "unknown type %S" t

let rec strip = function Value.Vproxy p -> strip p.Value.px_target | v -> v

let rec value_to_xml seen v =
  match strip v with
  | Value.Vnull -> Xml.elt "null" []
  | Value.Vbool b -> Xml.leaf "bool" (string_of_bool b)
  | Value.Vint i -> Xml.leaf "int" (string_of_int i)
  | Value.Vfloat f -> Xml.leaf "float" (Printf.sprintf "%h" f)
  | Value.Vstring s -> Xml.leaf "string" s
  | Value.Vchar c -> Xml.leaf "char" (string_of_int (Char.code c))
  | Value.Varr a ->
      Xml.elt "array"
        ~attrs:[ ("elemType", Ty.to_string a.Value.elem_ty) ]
        (Array.to_list (Array.map (value_to_xml seen) a.Value.items))
  | Value.Vobj o -> (
      match Hashtbl.find_opt seen o.Value.oid with
      | Some id -> Xml.elt "ref" ~attrs:[ ("href", string_of_int id) ] []
      | None ->
          let id = Hashtbl.length seen + 1 in
          Hashtbl.add seen o.Value.oid id;
          let bindings =
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) o.Value.fields []
            |> List.sort (fun (a, _) (b, _) -> String.compare a b)
          in
          Xml.elt "obj"
            ~attrs:[ ("id", string_of_int id); ("type", o.Value.cls) ]
            (List.map
               (fun (k, v) ->
                 Xml.elt "field" ~attrs:[ ("name", k) ]
                   [ value_to_xml seen v ])
               bindings))
  | Value.Vproxy _ -> assert false

let encode_xml v = value_to_xml (Hashtbl.create 16) v

let encode v =
  Xml.to_string
    (Xml.elt "soap:Envelope"
       ~attrs:[ ("xmlns:soap", "http://schemas.xmlsoap.org/soap/envelope/") ]
       [ Xml.elt "soap:Body" [ encode_xml v ] ])

exception Fail of error

let fail fmt = Printf.ksprintf (fun m -> raise (Fail (Malformed m))) fmt

let one_child x =
  match
    List.filter
      (function Xml.Element _ -> true | _ -> false)
      (Xml.children x)
  with
  | [ c ] -> c
  | cs -> fail "expected exactly one element child, got %d" (List.length cs)

let rec xml_to_value ?resolve reg objects x =
  let resolve =
    match resolve with Some f -> f | None -> Registry.find reg
  in
  match Xml.tag x with
  | Some "null" -> Value.Vnull
  | Some "bool" -> (
      match bool_of_string_opt (String.trim (Xml.text_content x)) with
      | Some b -> Value.Vbool b
      | None -> fail "bad bool %S" (Xml.text_content x))
  | Some "int" -> (
      match int_of_string_opt (String.trim (Xml.text_content x)) with
      | Some i -> Value.Vint i
      | None -> fail "bad int %S" (Xml.text_content x))
  | Some "float" -> (
      match float_of_string_opt (String.trim (Xml.text_content x)) with
      | Some f -> Value.Vfloat f
      | None -> fail "bad float %S" (Xml.text_content x))
  | Some "string" -> Value.Vstring (Xml.text_content x)
  | Some "char" -> (
      match int_of_string_opt (String.trim (Xml.text_content x)) with
      | Some c when c >= 0 && c < 256 -> Value.Vchar (Char.chr c)
      | _ -> fail "bad char %S" (Xml.text_content x))
  | Some "array" -> (
      let ty_s =
        match Xml.attr "elemType" x with
        | Some s -> s
        | None -> fail "array without elemType"
      in
      match Ty.of_string ty_s with
      | None -> fail "bad elemType %S" ty_s
      | Some elem_ty ->
          let items =
            Xml.children x
            |> List.filter (function Xml.Element _ -> true | _ -> false)
            |> List.map (xml_to_value ~resolve reg objects)
          in
          Value.Varr { Value.elem_ty; items = Array.of_list items })
  | Some "ref" -> (
      let id =
        match Xml.attr "href" x with
        | Some s -> (
            match int_of_string_opt s with
            | Some i -> i
            | None -> fail "bad href %S" s)
        | None -> fail "ref without href"
      in
      match Hashtbl.find_opt objects id with
      | Some o -> Value.Vobj o
      | None -> fail "dangling href %d" id)
  | Some "obj" -> (
      let id =
        match Xml.attr "id" x with
        | Some s -> (
            match int_of_string_opt s with
            | Some i -> i
            | None -> fail "bad id %S" s)
        | None -> fail "obj without id"
      in
      let cls =
        match Xml.attr "type" x with
        | Some s -> s
        | None -> fail "obj without type"
      in
      match resolve cls with
      | None -> raise (Fail (Unknown_type cls))
      | Some cd ->
          let o =
            { Value.oid = Value.fresh_oid ();
              cls = Meta.qualified_name cd;
              fields = Hashtbl.create 8 }
          in
          List.iter
            (fun f ->
              Value.set_field o f.Meta.f_name (Value.default_of f.Meta.f_ty))
            (Registry.all_fields reg cd);
          Hashtbl.add objects id o;
          List.iter
            (fun c ->
              match Xml.tag c with
              | Some "field" ->
                  let name =
                    match Xml.attr "name" c with
                    | Some n -> n
                    | None -> fail "field without name"
                  in
                  let v = xml_to_value ~resolve reg objects (one_child c) in
                  if Registry.find_field reg cd name <> None then
                    Value.set_field o name v
              | Some other -> fail "unexpected <%s> inside obj" other
              | None -> ())
            (Xml.children x);
          Value.Vobj o)
  | Some other -> fail "unexpected element <%s>" other
  | None -> fail "expected an element"

let decode_xml ?resolve reg x =
  try Ok (xml_to_value ?resolve reg (Hashtbl.create 16) x) with Fail e -> Error e

let decode ?resolve reg s =
  match Xml.parse s with
  | Error e -> Error (Malformed (Format.asprintf "%a" Xml.pp_error e))
  | Ok root -> (
      match Xml.tag root with
      | Some "soap:Envelope" -> (
          match Xml.child "soap:Body" root with
          | None -> Error (Malformed "missing soap:Body")
          | Some body -> (
              try decode_xml ?resolve reg (one_child body) with Fail e -> Error e))
      | Some _ ->
          (* Also accept a bare payload element. *)
          decode_xml ?resolve reg root
      | None -> Error (Malformed "no root element"))

let class_names x =
  let found = ref [] in
  let rec go x =
    (match Xml.tag x, Xml.attr "type" x with
    | Some "obj", Some cls ->
        if not (List.exists (String.equal cls) !found) then
          found := cls :: !found
    | _ -> ());
    List.iter go (Xml.children x)
  in
  go x;
  List.rev !found
